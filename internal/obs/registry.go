package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Registry is the single process-wide instrument catalog: subsystems
// register counters, gauges and histograms at startup and WritePrometheus
// renders all of them in the Prometheus text exposition format (0.0.4).
// Registration is replace-by-(name,labels) — re-registering the same
// series swaps the reader instead of duplicating the exposition line, so
// rebuilding a subsystem (new scheduler over a shared cache, say) is
// safe. A nil *Registry is valid: registrations no-op and histogram
// constructors return functional unregistered instruments.
type Registry struct {
	mu       sync.Mutex
	families []*metricFamily
	byName   map[string]*metricFamily
}

type metricFamily struct {
	name, help, typ string // typ: counter | gauge | histogram
	series          []*numSeries
	byLabels        map[string]*numSeries
	hists           []*histSeries
	histByLabels    map[string]*histSeries
	vec             *HistogramVec
	vecKeys         []string
}

type numSeries struct {
	labels string // rendered `k="v",...` or ""
	fn     func() float64
}

type histSeries struct {
	labels string
	h      *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metricFamily)}
}

func (r *Registry) family(name, help, typ string) *metricFamily {
	f := r.byName[name]
	if f == nil {
		f = &metricFamily{
			name: name, help: help, typ: typ,
			byLabels:     make(map[string]*numSeries),
			histByLabels: make(map[string]*histSeries),
		}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	return f
}

// CounterFunc registers a monotonically increasing series read from fn
// at exposition time. kv is an even-length list of label key/value pairs.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	r.addNum(name, help, "counter", fn, kv)
}

// GaugeFunc registers a point-in-time series read from fn at exposition
// time. kv is an even-length list of label key/value pairs.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.addNum(name, help, "gauge", fn, kv)
}

func (r *Registry) addNum(name, help, typ string, fn func() float64, kv []string) {
	if r == nil || fn == nil {
		return
	}
	labels := renderLabelPairs(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	if s := f.byLabels[labels]; s != nil {
		s.fn = fn
		return
	}
	s := &numSeries{labels: labels, fn: fn}
	f.byLabels[labels] = s
	f.series = append(f.series, s)
}

// NewHistogram registers and returns a histogram with static labels.
// On a nil registry it returns a functional unregistered histogram.
func (r *Registry) NewHistogram(name, help string, kv ...string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	labels := renderLabelPairs(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	if s := f.histByLabels[labels]; s != nil {
		return s.h
	}
	s := &histSeries{labels: labels, h: &Histogram{}}
	f.histByLabels[labels] = s
	f.hists = append(f.hists, s)
	return s.h
}

// NewHistogramVec registers and returns a histogram family keyed by the
// given label keys; children appear in the exposition as they are
// created via With. On a nil registry it returns a functional
// unregistered vector.
func (r *Registry) NewHistogramVec(name, help string, keys ...string) *HistogramVec {
	if r == nil {
		return NewHistogramVec(keys...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	if f.vec == nil {
		f.vec = NewHistogramVec(keys...)
		f.vecKeys = keys
	}
	return f.vec
}

// Names lists every registered family name, in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

// WritePrometheus renders every family in the text exposition format.
// Reader callbacks run under the registry lock, so they must not
// re-register instruments (reading atomics or other locks is fine).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSample(w, f.name, s.labels, s.fn())
		}
		for _, s := range f.hists {
			writeHistogram(w, f.name, s.labels, s.h.Snapshot())
		}
		if f.vec != nil {
			for _, c := range f.vec.snapshotAll() {
				kv := make([]string, 0, 2*len(f.vecKeys))
				for i, k := range f.vecKeys {
					v := ""
					if i < len(c.values) {
						v = c.values[i]
					}
					kv = append(kv, k, v)
				}
				writeHistogram(w, f.name, renderLabelPairs(kv), c.snap)
			}
		}
	}
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += s.Counts[i]
		le := strconv.FormatFloat(float64(bucketBound(i))/1e9, 'g', -1, 64)
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	cum += s.Counts[histBuckets]
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(w, name+"_sum", labels, float64(s.SumNS)/1e9)
	writeSample(w, name+"_count", labels, float64(s.Count))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabelPairs renders an even-length key/value list as
// `k1="v1",k2="v2"`, escaping values, with keys in given order.
func renderLabelPairs(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
