package obs

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
	"time"
)

// sampleLine is the text-format grammar for one sample:
// name{labels} value, labels optional.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.CounterFunc("javaflow_test_requests_total", "Requests.", func() float64 { return 42 })
	reg.GaugeFunc("javaflow_test_inflight", "In flight.", func() float64 { return 3 })
	reg.GaugeFunc("javaflow_test_backend_up", "Backend liveness.", func() float64 { return 1 },
		"backend", `http://peer:8080/with"quote`)
	h := reg.NewHistogram("javaflow_test_duration_seconds", "Latency.")
	h.Record(time.Millisecond)
	h.Record(time.Second)
	vec := reg.NewHistogramVec("javaflow_test_attempt_seconds", "Attempts.", "backend", "outcome")
	vec.With("b1", "ok").Record(time.Millisecond)
	vec.With("b1", "error").Record(time.Second)
	return reg
}

func TestWritePrometheusGrammar(t *testing.T) {
	reg := buildTestRegistry()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line violates text-format grammar: %q", line)
		}
	}
	if lines < 10 {
		t.Fatalf("suspiciously short exposition (%d lines):\n%s", lines, out)
	}
}

func TestWritePrometheusContent(t *testing.T) {
	reg := buildTestRegistry()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE javaflow_test_requests_total counter",
		"javaflow_test_requests_total 42",
		"# TYPE javaflow_test_inflight gauge",
		"javaflow_test_inflight 3",
		`javaflow_test_backend_up{backend="http://peer:8080/with\"quote"} 1`,
		"# TYPE javaflow_test_duration_seconds histogram",
		`javaflow_test_duration_seconds_bucket{le="+Inf"} 2`,
		"javaflow_test_duration_seconds_count 2",
		`javaflow_test_attempt_seconds_bucket{backend="b1",outcome="ok",le="+Inf"} 1`,
		`javaflow_test_attempt_seconds_count{backend="b1",outcome="error"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, "javaflow_test_duration_seconds_sum 1.001") {
		t.Errorf("histogram _sum not in seconds:\n%s", out)
	}
}

func TestRegistryReplaceSemantics(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("javaflow_test_g", "G.", func() float64 { return 1 })
	reg.GaugeFunc("javaflow_test_g", "G.", func() float64 { return 2 }) // replace
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "\njavaflow_test_g ") != 1 {
		t.Fatalf("duplicate series after re-registration:\n%s", out)
	}
	if !strings.Contains(out, "javaflow_test_g 2") {
		t.Fatalf("replacement did not take:\n%s", out)
	}

	h1 := reg.NewHistogram("javaflow_test_h_seconds", "H.")
	h2 := reg.NewHistogram("javaflow_test_h_seconds", "H.")
	if h1 != h2 {
		t.Error("re-registering a histogram should return the same instrument")
	}
	v1 := reg.NewHistogramVec("javaflow_test_v_seconds", "V.", "peer")
	v2 := reg.NewHistogramVec("javaflow_test_v_seconds", "V.", "peer")
	if v1 != v2 {
		t.Error("re-registering a histogram vec should return the same instrument")
	}
}

func TestRegistryNames(t *testing.T) {
	reg := buildTestRegistry()
	names := reg.Names()
	want := map[string]bool{
		"javaflow_test_requests_total":   false,
		"javaflow_test_duration_seconds": false,
		"javaflow_test_attempt_seconds":  false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Names() missing %q: %v", n, names)
		}
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.CounterFunc("x_total", "X.", func() float64 { return 1 })
	reg.GaugeFunc("y", "Y.", func() float64 { return 1 })
	h := reg.NewHistogram("h_seconds", "H.")
	if h == nil {
		t.Fatal("nil registry must return a functional histogram")
	}
	h.Record(time.Millisecond)
	if h.Snapshot().Count != 1 {
		t.Error("unregistered histogram should still record")
	}
	v := reg.NewHistogramVec("v_seconds", "V.", "k")
	if v == nil || v.With("a") == nil {
		t.Fatal("nil registry must return a functional histogram vec")
	}
	reg.WritePrometheus(&strings.Builder{})
	if reg.Names() != nil {
		t.Error("nil registry Names should be nil")
	}
}

func TestRuntimeMetricsRegistered(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{"javaflow_goroutines", "javaflow_heap_alloc_bytes", "javaflow_gc_runs_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
}
