package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpansForIndexesAndEvicts(t *testing.T) {
	tr := NewTracer(4)
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: "aaaa0000aaaa0000", SpanID: "bbbb0000bbbb0000", Hop: 1})
	_, sp := tr.StartSpan(ctx, "child")
	sp.End(nil)
	_, sp2 := tr.StartSpan(context.Background(), "other")
	sp2.End(nil)

	got := tr.SpansFor("aaaa0000aaaa0000")
	if len(got) != 1 || got[0].Name != "child" || got[0].Hop != 1 {
		t.Fatalf("SpansFor = %+v", got)
	}
	if got[0].ParentID != "bbbb0000bbbb0000" {
		t.Fatalf("ParentID = %q", got[0].ParentID)
	}

	// Overflow the ring; the indexed span must be evicted with its slot.
	for i := 0; i < 8; i++ {
		_, s := tr.StartSpan(context.Background(), "filler")
		s.End(nil)
	}
	if got := tr.SpansFor("aaaa0000aaaa0000"); len(got) != 0 {
		t.Fatalf("evicted trace still indexed: %+v", got)
	}

	var nilT *Tracer
	if nilT.SpansFor("aaaa0000aaaa0000") != nil {
		t.Fatal("nil tracer must report nothing")
	}
}

func TestSpansForOrdersByHop(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now().UnixNano()
	for _, sp := range []Span{
		{TraceID: "t0", SpanID: "s2", Hop: 1, StartNanos: base + 100},
		{TraceID: "t0", SpanID: "s1", Hop: 0, StartNanos: base},
		{TraceID: "t0", SpanID: "s3", Hop: 1, StartNanos: base + 50},
	} {
		tr.record(sp)
	}
	got := tr.SpansFor("t0")
	if len(got) != 3 || got[0].SpanID != "s1" || got[1].SpanID != "s3" || got[2].SpanID != "s2" {
		t.Fatalf("order = %v", []string{got[0].SpanID, got[1].SpanID, got[2].SpanID})
	}
}

func TestAssembleTraceStitchesHops(t *testing.T) {
	// Front node: ingress span (hop 0) with a dispatch child; backend:
	// the server span the dispatch hop landed on (hop 1).
	front := NodeSpans{Node: "front", Spans: []Span{
		{TraceID: "t0", SpanID: "root", Name: "POST /v1/run", Hop: 0, StartNanos: 100, DurationNS: 900},
		{TraceID: "t0", SpanID: "disp", ParentID: "root", Name: "dispatch.attempt", Hop: 0, StartNanos: 200, DurationNS: 700},
	}}
	backend := NodeSpans{Node: "backend", Spans: []Span{
		{TraceID: "t0", SpanID: "serve", ParentID: "disp", Name: "POST /v1/run", Hop: 1, StartNanos: 300, DurationNS: 500},
	}}

	at := AssembleTrace("t0", []NodeSpans{backend, front})
	if at.Partial {
		t.Fatalf("complete trace marked partial: %+v", at)
	}
	if at.Spans != 3 || len(at.Roots) != 1 {
		t.Fatalf("spans=%d roots=%d", at.Spans, len(at.Roots))
	}
	root := at.Roots[0]
	if root.SpanID != "root" || root.Node != "front" {
		t.Fatalf("root = %+v", root.Span)
	}
	if len(root.Children) != 1 || root.Children[0].SpanID != "disp" {
		t.Fatalf("root children = %+v", root.Children)
	}
	hop1 := root.Children[0].Children
	if len(hop1) != 1 || hop1[0].SpanID != "serve" || hop1[0].Node != "backend" || hop1[0].Hop != 1 {
		t.Fatalf("hop-1 child = %+v", hop1)
	}
	if at.DurationNS != 900 {
		t.Fatalf("DurationNS = %d, want 900 (root span end - start)", at.DurationNS)
	}
}

func TestAssembleTraceDeadPeerIsPartialNotError(t *testing.T) {
	local := NodeSpans{Node: "front", Spans: []Span{
		{TraceID: "t0", SpanID: "root", Name: "ingress", Hop: 0, StartNanos: 1, DurationNS: 10},
	}}
	dead := NodeSpans{Node: "http://gone:1", Err: "dial tcp: connection refused"}

	at := AssembleTrace("t0", []NodeSpans{local, dead})
	if !at.Partial {
		t.Fatal("dead peer must mark the assembly partial")
	}
	if at.Spans != 1 || len(at.Roots) != 1 {
		t.Fatalf("local spans lost: %+v", at)
	}
	var deadStatus *NodeStatus
	for i := range at.Nodes {
		if at.Nodes[i].Node == "http://gone:1" {
			deadStatus = &at.Nodes[i]
		}
	}
	if deadStatus == nil || deadStatus.Err == "" || deadStatus.Spans != 0 {
		t.Fatalf("dead peer status = %+v", at.Nodes)
	}
}

func TestAssembleTraceOrphanIsRootAndPartial(t *testing.T) {
	// The parent span was evicted from every ring: the child surfaces as
	// a root and the assembly is marked partial.
	at := AssembleTrace("t0", []NodeSpans{{Node: "n", Spans: []Span{
		{TraceID: "t0", SpanID: "orphan", ParentID: "gone", Hop: 2, StartNanos: 5, DurationNS: 1},
	}}})
	if !at.Partial || len(at.Roots) != 1 || at.Roots[0].SpanID != "orphan" {
		t.Fatalf("orphan handling: %+v", at)
	}
	// Foreign-trace spans are dropped.
	at = AssembleTrace("t0", []NodeSpans{{Node: "n", Spans: []Span{{TraceID: "other", SpanID: "x"}}}})
	if at.Spans != 0 || len(at.Roots) != 0 {
		t.Fatalf("foreign span kept: %+v", at)
	}
	// Empty input is a valid empty assembly.
	at = AssembleTrace("t0", nil)
	if at.Spans != 0 || at.Partial || at.Roots == nil || at.Nodes == nil {
		t.Fatalf("empty input: %+v", at)
	}
}
