package obs

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats so one exposition scrape pays
// for at most one read even though several gauges consume it.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > time.Second {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// RegisterRuntimeMetrics registers goroutine, heap and GC-pause gauges.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	mem := &memReader{}
	reg.GaugeFunc("javaflow_goroutines", "Current number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("javaflow_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(mem.read().HeapAlloc)
	})
	reg.GaugeFunc("javaflow_heap_objects", "Number of allocated heap objects.", func() float64 {
		return float64(mem.read().HeapObjects)
	})
	reg.CounterFunc("javaflow_gc_runs_total", "Completed garbage-collection cycles.", func() float64 {
		return float64(mem.read().NumGC)
	})
	reg.CounterFunc("javaflow_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", func() float64 {
		return float64(mem.read().PauseTotalNs) / 1e9
	})
}
