package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultRingEvents bounds the event journal when no size is given.
const defaultRingEvents = 512

// maxEventAttrs caps the attribute strings one journal slot carries
// (4 key/value pairs). Emit truncates longer lists instead of
// allocating — the journal trades completeness for a wait-free,
// allocation-free hot path.
const maxEventAttrs = 8

// Severity grades journal events.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the wire name ("info", "warn", "error").
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "info"
	}
}

// ParseSeverity maps a wire name back to its Severity; ok=false on
// unknown input.
func ParseSeverity(s string) (Severity, bool) {
	switch s {
	case "info":
		return SevInfo, true
	case "warn":
		return SevWarn, true
	case "error":
		return SevError, true
	}
	return SevInfo, false
}

// Event is one journal entry in the GET /debug/events wire format: a
// state transition some subsystem decided was worth remembering
// (suspension, shed, cursor heal, compaction, ...), stamped with the
// node it happened on and, when the transition belonged to a request,
// the trace ID that links it to an assembled trace.
type Event struct {
	Time      int64             `json:"timeUnixNano"`
	Node      string            `json:"node,omitempty"`
	Subsystem string            `json:"subsystem"`
	Kind      string            `json:"kind"`
	Severity  string            `json:"severity"`
	TraceID   string            `json:"traceId,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// eventSlot is one fixed-shape ring cell. The per-slot mutex covers a
// handful of plain stores and is contended only when a render races an
// emit into the same cell — emitters never contend with each other
// (the atomic slot claim hands every emit a distinct cell until the
// ring wraps).
type eventSlot struct {
	mu        sync.Mutex
	time      int64
	subsystem string
	kind      string
	sev       Severity
	traceID   string
	nattrs    int
	attrs     [maxEventAttrs]string
}

// eventKey keys the per-(subsystem,kind) counters.
type eventKey struct{ subsystem, kind string }

// Journal is the structured event ring: a bounded buffer of typed
// state transitions every subsystem emits into, rendered by
// GET /debug/events and dumped to stderr on SIGQUIT. Recording is an
// atomic slot claim plus a handful of stores under a per-slot mutex —
// emitters never contend with each other, allocate nothing, and finish
// in O(1) — so emit sites can sit on dispatch and admission hot paths.
// Per-(subsystem,kind) counters survive ring wraparound and feed
// javaflow_events_total; they live in a copy-on-write map so bumping
// one is an atomic pointer load away. A nil *Journal is a valid no-op,
// like every obs instrument.
type Journal struct {
	node string
	// base anchors timestamps: wall time is derived from one monotonic
	// clock read against it, half the cost of time.Now's two reads —
	// the difference between emit fitting the 100ns budget or not.
	base   time.Time
	baseNS int64
	next   atomic.Uint64 // total slots ever claimed
	ring   []eventSlot

	// counts is an immutable map swapped wholesale when a new
	// (subsystem,kind) pair appears; mu serializes only those swaps.
	counts atomic.Pointer[map[eventKey]*atomic.Uint64]
	mu     sync.Mutex
	onNew  func(subsystem, kind string, n *atomic.Uint64)
}

// NewJournal builds a journal whose ring holds capEvents entries
// (cap <= 0 selects the default of 512). node stamps every rendered
// event so fleet tooling can tell whose journal a line came from.
func NewJournal(node string, capEvents int) *Journal {
	if capEvents <= 0 {
		capEvents = defaultRingEvents
	}
	base := time.Now()
	j := &Journal{
		node:   node,
		base:   base,
		baseNS: base.UnixNano(),
		ring:   make([]eventSlot, capEvents),
	}
	empty := make(map[eventKey]*atomic.Uint64)
	j.counts.Store(&empty)
	return j
}

// OnNewKind installs a hook invoked once per first-seen
// (subsystem, kind) pair with the counter that will track it — the
// registry wiring uses it to register a javaflow_events_total series
// per kind. Install before the journal sees traffic.
func (j *Journal) OnNewKind(fn func(subsystem, kind string, n *atomic.Uint64)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.onNew = fn
	j.mu.Unlock()
}

// Emit files one event. attrs is an even-length key/value list; at
// most 4 pairs are kept. Safe for concurrent use from any goroutine;
// the hot path is allocation-free and O(1) (CI pins it under 100ns
// next to the histogram record gate).
func (j *Journal) Emit(subsystem, kind string, sev Severity, traceID string, attrs ...string) {
	if j == nil {
		return
	}
	j.count(subsystem, kind)
	now := j.baseNS + time.Since(j.base).Nanoseconds()
	n := len(attrs) &^ 1
	if n > maxEventAttrs {
		n = maxEventAttrs
	}
	slot := &j.ring[(j.next.Add(1)-1)%uint64(len(j.ring))]
	slot.mu.Lock()
	slot.time = now
	slot.subsystem = subsystem
	slot.kind = kind
	slot.sev = sev
	slot.traceID = traceID
	slot.nattrs = n
	copy(slot.attrs[:n], attrs[:n])
	slot.mu.Unlock()
}

// count bumps the (subsystem,kind) counter, creating it — and telling
// the OnNewKind hook — on first sight. The fast path is an atomic
// pointer load plus a map hit on an immutable map: no locks, no
// allocation.
func (j *Journal) count(subsystem, kind string) {
	k := eventKey{subsystem, kind}
	if n := (*j.counts.Load())[k]; n != nil {
		n.Add(1)
		return
	}
	j.mu.Lock()
	old := *j.counts.Load()
	n := old[k]
	var onNew func(string, string, *atomic.Uint64)
	if n == nil {
		n = new(atomic.Uint64)
		next := make(map[eventKey]*atomic.Uint64, len(old)+1)
		for ok, ov := range old {
			next[ok] = ov
		}
		next[k] = n
		j.counts.Store(&next)
		onNew = j.onNew
	}
	j.mu.Unlock()
	n.Add(1)
	if onNew != nil {
		onNew(subsystem, kind, n)
	}
}

// EventCount reports the total number of events ever emitted.
func (j *Journal) EventCount() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Events returns up to n events newest-first, keeping only those
// matching subsystem (empty = all) at or above minSev. Rendering runs
// concurrently with emitters: a cell a writer is mid-rewrite is
// skipped, never blocked on.
func (j *Journal) Events(subsystem string, minSev Severity, n int) []Event {
	if j == nil || n <= 0 {
		return nil
	}
	pos := j.next.Load()
	size := uint64(len(j.ring))
	if pos < size {
		size = pos
	}
	out := make([]Event, 0, min(n, int(size)))
	for i := uint64(0); i < size && len(out) < n; i++ {
		slot := &j.ring[(pos-1-i)%uint64(len(j.ring))]
		ev, ok := readSlot(slot)
		if !ok {
			continue
		}
		if subsystem != "" && ev.Subsystem != subsystem {
			continue
		}
		if sev, _ := ParseSeverity(ev.Severity); sev < minSev {
			continue
		}
		ev.Node = j.node
		out = append(out, ev)
	}
	return out
}

// readSlot copies one cell out under its slot mutex. A claimed cell
// whose writer has not stored yet reads as its previous occupant (or,
// on a fresh ring, as empty — reported not-ok); either way the copy is
// internally consistent.
func readSlot(slot *eventSlot) (Event, bool) {
	slot.mu.Lock()
	ev := Event{
		Time:      slot.time,
		Subsystem: slot.subsystem,
		Kind:      slot.kind,
		Severity:  slot.sev.String(),
		TraceID:   slot.traceID,
	}
	nattrs := slot.nattrs
	var attrs [maxEventAttrs]string
	copy(attrs[:], slot.attrs[:])
	slot.mu.Unlock()
	if ev.Time == 0 {
		return Event{}, false
	}
	if nattrs > 0 && nattrs <= maxEventAttrs {
		ev.Attrs = make(map[string]string, nattrs/2)
		for i := 0; i+1 < nattrs; i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	return ev, true
}

// CountsByKind snapshots the per-(subsystem,kind) totals, which
// survive ring wraparound (the ring remembers the last N events, the
// counters remember them all).
func (j *Journal) CountsByKind() map[string]uint64 {
	if j == nil {
		return nil
	}
	m := *j.counts.Load()
	out := make(map[string]uint64, len(m))
	for k, n := range m {
		out[k.subsystem+"/"+k.kind] = n.Load()
	}
	return out
}

// EventDump is the GET /debug/events response body.
type EventDump struct {
	Node   string            `json:"node,omitempty"`
	Events uint64            `json:"events"`
	Counts map[string]uint64 `json:"countsByKind,omitempty"`
	Recent []Event           `json:"recent"`
}

// Dump builds the /debug/events payload with up to n filtered events.
func (j *Journal) Dump(subsystem string, minSev Severity, n int) EventDump {
	if j == nil {
		return EventDump{Recent: []Event{}}
	}
	recent := j.Events(subsystem, minSev, n)
	if recent == nil {
		recent = []Event{}
	}
	return EventDump{
		Node:   j.node,
		Events: j.EventCount(),
		Counts: j.CountsByKind(),
		Recent: recent,
	}
}

// WriteText renders up to n newest events oldest-first as one line
// each — the SIGQUIT stderr dump format.
func (j *Journal) WriteText(w io.Writer, n int) {
	if j == nil {
		return
	}
	events := j.Events("", SevInfo, n)
	for i := len(events) - 1; i >= 0; i-- {
		ev := events[i]
		fmt.Fprintf(w, "%s %-5s %s/%s", time.Unix(0, ev.Time).UTC().Format(time.RFC3339Nano),
			ev.Severity, ev.Subsystem, ev.Kind)
		if ev.TraceID != "" {
			fmt.Fprintf(w, " trace=%s", ev.TraceID)
		}
		for k, v := range ev.Attrs {
			fmt.Fprintf(w, " %s=%s", k, v)
		}
		fmt.Fprintln(w)
	}
}
