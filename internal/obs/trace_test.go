package obs

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "0123456789abcdef", SpanID: "fedcba9876543210", Hop: 3}
	got, ok := ParseTrace(tc.Header())
	if !ok || got != tc {
		t.Fatalf("ParseTrace(%q) = %+v, %v; want %+v", tc.Header(), got, ok, tc)
	}
}

func TestParseTraceRejectsMalformed(t *testing.T) {
	bad := []string{
		"", "abc", "x-y", "g123-0123456789abcdef-0", // non-hex trace ID
		"0123456789abcdef-0123456789abcdef--1",
		"0123456789abcdef-0123456789abcdef-999", // hop too deep
		"0123456789abcdef-0123456789abcdef-x",
		"-0123456789abcdef-1",
		strings.Repeat("a", 64) + "-0123456789abcdef-0",
	}
	for _, s := range bad {
		if _, ok := ParseTrace(s); ok {
			t.Errorf("ParseTrace(%q) accepted, want reject", s)
		}
	}
}

func TestInjectIncrementsHop(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: "0123456789abcdef", SpanID: "00000000000000aa", Hop: 1})
	req := httptest.NewRequest("POST", "http://peer/v1/run", nil)
	Inject(req, ctx)
	tc, ok := ParseTrace(req.Header.Get(TraceHeader))
	if !ok {
		t.Fatal("injected header did not parse")
	}
	if tc.Hop != 2 || tc.TraceID != "0123456789abcdef" || tc.SpanID != "00000000000000aa" {
		t.Fatalf("injected context = %+v, want same IDs at hop 2", tc)
	}

	// No trace in context → no header.
	req2 := httptest.NewRequest("POST", "http://peer/v1/run", nil)
	Inject(req2, context.Background())
	if req2.Header.Get(TraceHeader) != "" {
		t.Error("Inject without a trace context set a header")
	}
}

func TestStartSpanParentage(t *testing.T) {
	tr := NewTracer(8)
	ctx, parent := tr.StartSpan(context.Background(), "root")
	pctx := parent.Context()
	if pctx.TraceID == "" || pctx.Hop != 0 {
		t.Fatalf("root span context = %+v, want fresh trace at hop 0", pctx)
	}
	_, child := tr.StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.End(errors.New("boom"))
	parent.End(nil)

	recent := tr.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("recent = %d spans, want 2", len(recent))
	}
	// Newest first: child ended first, parent second → recent[0] is root.
	root, ch := recent[0], recent[1]
	if root.Name != "root" || ch.Name != "child" {
		t.Fatalf("span order: got %q, %q", root.Name, ch.Name)
	}
	if ch.TraceID != root.TraceID {
		t.Error("child not in parent's trace")
	}
	if ch.ParentID != root.SpanID {
		t.Errorf("child parent = %q, want %q", ch.ParentID, root.SpanID)
	}
	if ch.Error != "boom" || ch.Attrs["k"] != "v" {
		t.Errorf("child error/attrs not recorded: %+v", ch)
	}
}

func TestStartSpanJoinsInboundTrace(t *testing.T) {
	tr := NewTracer(8)
	inbound := TraceContext{TraceID: "0123456789abcdef", SpanID: "00000000000000aa", Hop: 1}
	ctx := ContextWithTrace(context.Background(), inbound)
	_, sp := tr.StartSpan(ctx, "server")
	sp.End(nil)
	got := tr.Recent(1)[0]
	if got.TraceID != inbound.TraceID || got.ParentID != inbound.SpanID || got.Hop != 1 {
		t.Fatalf("server span = %+v, want joined to inbound trace at hop 1", got)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 100; i++ {
		_, sp := tr.StartSpan(context.Background(), "s")
		sp.End(nil)
	}
	if got := len(tr.Recent(100)); got != 4 {
		t.Errorf("recent length = %d, want ring cap 4", got)
	}
	if tr.SpanCount() != 100 {
		t.Errorf("span count = %d, want 100", tr.SpanCount())
	}
	if got := len(tr.Slowest(100)); got > slowestSpans {
		t.Errorf("slowest length = %d, want ≤ %d", got, slowestSpans)
	}
}

func TestTracerSlowestOrdering(t *testing.T) {
	tr := NewTracer(4)
	for _, d := range []int64{5, 1, 9, 3} {
		tr.record(Span{Name: "s", DurationNS: d * int64(time.Millisecond)})
	}
	slow := tr.Slowest(4)
	for i := 1; i < len(slow); i++ {
		if slow[i].DurationNS > slow[i-1].DurationNS {
			t.Fatalf("slowest not descending: %v", slow)
		}
	}
	if slow[0].DurationNS != 9*int64(time.Millisecond) {
		t.Errorf("slowest[0] = %dns, want 9ms", slow[0].DurationNS)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	sp.SetAttr("a", "b")
	sp.End(nil)
	if ctx == nil {
		t.Fatal("nil tracer must still return the context")
	}
	if tr.SpanCount() != 0 || tr.Recent(5) != nil || tr.Slowest(5) != nil {
		t.Error("nil tracer should report empty state")
	}
	d := tr.Dump(5)
	if d.Spans != 0 || d.Recent == nil || d.Slowest == nil {
		t.Errorf("nil tracer dump = %+v, want empty non-nil slices", d)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "c")
				_, child := tr.StartSpan(ctx, "child")
				child.End(nil)
				sp.End(nil)
			}
		}()
	}
	wg.Wait()
	if tr.SpanCount() != 8*500*2 {
		t.Errorf("span count = %d, want %d", tr.SpanCount(), 8*500*2)
	}
}
