package admit

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries a request's absolute deadline across hops as
// unix milliseconds UTC. It is minted at ingress from the client
// context and re-injected on every outbound dispatch and replicate
// call, so a hop never starts work its caller can't wait for.
const DeadlineHeader = "X-Javaflow-Deadline"

// MaxDeadlineAhead bounds how far in the future a wire deadline may be.
// Anything beyond it is treated as "no deadline": a deadline a day out
// constrains nothing, and a hostile 64-bit value must not poison the
// context math.
const MaxDeadlineAhead = 24 * time.Hour

// FormatDeadline renders an absolute deadline for the wire.
func FormatDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixMilli(), 10)
}

// ParseDeadline interprets a wire value against the given clock.
// Malformed or hostile values — non-integer, non-positive, or further
// than MaxDeadlineAhead in the future — parse to "no deadline"
// (ok=false): a peer's bad clock or a garbage header must degrade to
// the pre-deadline behavior, never to a wedged or instantly-shed
// request. A valid deadline in the past IS returned (ok=true); that is
// the expired-on-arrival case the caller sheds.
func ParseDeadline(value string, now time.Time) (time.Time, bool) {
	if value == "" {
		return time.Time{}, false
	}
	ms, err := strconv.ParseInt(value, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, false
	}
	t := time.UnixMilli(ms)
	if t.Sub(now) > MaxDeadlineAhead {
		return time.Time{}, false
	}
	return t, true
}

// FromRequest extracts the wire deadline from an inbound request.
func FromRequest(r *http.Request, now time.Time) (time.Time, bool) {
	return ParseDeadline(r.Header.Get(DeadlineHeader), now)
}

// Inject stamps ctx's deadline (if any) onto an outbound request, so
// dispatch hops and replicate pulls inherit the ingress deadline
// without each call site knowing the wire format.
func Inject(req *http.Request, ctx context.Context) {
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(DeadlineHeader, FormatDeadline(dl))
	}
}

// WithDeadline applies a parsed wire deadline to a context, keeping any
// earlier deadline already present (a hop may only tighten, never
// extend, its caller's budget).
func WithDeadline(ctx context.Context, dl time.Time) (context.Context, context.CancelFunc) {
	if cur, ok := ctx.Deadline(); ok && cur.Before(dl) {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, dl)
}
