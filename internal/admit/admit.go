// Package admit is the overload-protection layer threaded through
// serve → dispatch → replicate: bounded per-class admission with typed
// 429-shaped rejections and Retry-After derived from observed service
// rate, deadline propagation over the X-Javaflow-Deadline header, and
// token-bucket retry budgets with decorrelated-jitter backoff.
//
// Load-bearing invariant: overload degrades predictably instead of
// collapsing — over-cap work is rejected in O(1) with a typed
// *OverloadError before it costs a goroutine, a queue slot or an engine
// run; admitted work is never perturbed (admission is two atomic ops on
// the hot path), and a rejected or shed request tells its caller exactly
// when to come back. A nil *Controller is a valid no-op that admits
// everything, so single-node tests and embedded schedulers pay nothing.
package admit

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"javaflow/internal/obs"
)

// Class partitions admission capacity by work type, so a flood of batch
// sweeps cannot starve point runs and replication traffic keeps its own
// lane during serving floods.
type Class string

const (
	// ClassRun is a point execution: POST /v1/run.
	ClassRun Class = "run"
	// ClassBatch is a population sweep: POST /v1/batch (buffered or
	// streaming). One admission covers the whole sweep, so the cap bounds
	// concurrent sweeps, not jobs.
	ClassBatch Class = "batch"
	// ClassReplicate covers the replication surface: segment exports,
	// manifest reads, forced syncs and gossip notifications.
	ClassReplicate Class = "replicate"
)

// Classes lists every admission class in stable order.
func Classes() []Class { return []Class{ClassRun, ClassBatch, ClassReplicate} }

// Defaults for Options fields left zero.
const (
	DefaultRunCap       = 256
	DefaultBatchCap     = 4
	DefaultReplicateCap = 32

	// minRetryAfter / maxRetryAfter clamp the Retry-After hint: never
	// tell a client "0" (it would hammer) and never park it for minutes
	// on a queue that drains in seconds.
	minRetryAfter = 1 * time.Second
	maxRetryAfter = 60 * time.Second
)

// Options configures a Controller.
type Options struct {
	// RunCap / BatchCap / ReplicateCap bound how many requests of each
	// class may be admitted (queued or executing) at once. <=0 uses the
	// defaults above; the caps are independent lanes, not a shared pool.
	RunCap, BatchCap, ReplicateCap int
	// Parallelism is the service's drain concurrency (the scheduler's
	// worker count) used in the Retry-After arithmetic; <=0 uses 1.
	Parallelism int
	// Registry receives the queue-depth gauges and rejection counters
	// (javaflow_admit_*). Nil leaves them unregistered (still in Stats).
	Registry *obs.Registry
	// Journal receives admission state transitions (over-cap rejections,
	// deadline sheds, draining flips) as structured events. Nil disables
	// event recording.
	Journal *obs.Journal
	// Now is the clock (nil uses time.Now). Tests inject a fake.
	Now func() time.Time
}

// classState is one class's lane: its cap, live depth, lifetime
// counters, and the service-time histogram Retry-After derives from.
type classState struct {
	class    Class
	cap      int64
	depth    atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	shed     atomic.Int64
	service  *obs.Histogram
}

// Controller is the per-daemon admission gate. All methods are safe for
// concurrent use; a nil *Controller admits everything and records
// nothing.
type Controller struct {
	classes     map[Class]*classState
	order       []*classState
	parallelism int64
	draining    atomic.Bool
	now         func() time.Time
	journal     *obs.Journal
}

// New builds a controller from opts and registers its instruments.
func New(opts Options) *Controller {
	caps := map[Class]int{
		ClassRun:       pick(opts.RunCap, DefaultRunCap),
		ClassBatch:     pick(opts.BatchCap, DefaultBatchCap),
		ClassReplicate: pick(opts.ReplicateCap, DefaultReplicateCap),
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	c := &Controller{
		classes:     make(map[Class]*classState, len(caps)),
		parallelism: int64(pick(opts.Parallelism, 1)),
		now:         now,
		journal:     opts.Journal,
	}
	for _, class := range Classes() {
		cs := &classState{
			class: class,
			cap:   int64(caps[class]),
			service: opts.Registry.NewHistogram("javaflow_admit_service_duration_seconds",
				"Admitted-request service time per class (admission to release).", "class", string(class)),
		}
		c.classes[class] = cs
		c.order = append(c.order, cs)
		c.registerClass(opts.Registry, cs)
	}
	return c
}

func pick(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// registerClass exposes one lane's gauges and counters in the registry
// (no-op on nil).
func (c *Controller) registerClass(reg *obs.Registry, cs *classState) {
	if reg == nil {
		return
	}
	label := string(cs.class)
	reg.GaugeFunc("javaflow_admit_queue_depth", "Requests currently admitted (queued or executing) per class.",
		func() float64 { return float64(cs.depth.Load()) }, "class", label)
	reg.GaugeFunc("javaflow_admit_queue_cap", "Admission cap per class.",
		func() float64 { return float64(cs.cap) }, "class", label)
	reg.CounterFunc("javaflow_admit_admitted_total", "Requests admitted per class.",
		func() float64 { return float64(cs.admitted.Load()) }, "class", label)
	reg.CounterFunc("javaflow_admit_rejections_total", "Requests rejected over-cap (typed 429) per class.",
		func() float64 { return float64(cs.rejected.Load()) }, "class", label)
	reg.CounterFunc("javaflow_admit_deadline_sheds_total", "Requests shed expired-on-arrival per class.",
		func() float64 { return float64(cs.shed.Load()) }, "class", label)
}

// OverloadError is the typed rejection: the lane is at cap. The HTTP
// layer maps it to 429 Too Many Requests with a Retry-After header.
type OverloadError struct {
	Class      Class
	Depth, Cap int64
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: %s queue at cap (%d/%d), retry after %v",
		e.Class, e.Depth, e.Cap, e.RetryAfter)
}

// RetryAfterSeconds renders the hint for the Retry-After header: whole
// seconds, rounded up, never zero.
func (e *OverloadError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// Admit claims one slot in the class's lane. On success it returns a
// release that must be called exactly once when the request finishes
// (releasing files the service time the Retry-After arithmetic feeds
// on). At cap — or while the controller drains for shutdown — it
// returns a *OverloadError carrying the Retry-After hint, and the
// request must not execute. Admission order is arrival order: slots
// free oldest-first as admitted work completes, so under a flood the
// oldest admitted requests finish while the newest arrivals are the
// ones rejected.
func (c *Controller) Admit(class Class) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	cs := c.classes[class]
	if cs == nil {
		return func() {}, nil
	}
	if c.draining.Load() {
		cs.rejected.Add(1)
		return nil, c.overload(cs, cs.depth.Load())
	}
	depth := cs.depth.Add(1)
	if depth > cs.cap {
		cs.depth.Add(-1)
		cs.rejected.Add(1)
		c.journal.Emit("admit", "reject", obs.SevWarn, "",
			"class", string(cs.class), "cap", strconv.FormatInt(cs.cap, 10))
		return nil, c.overload(cs, depth-1)
	}
	cs.admitted.Add(1)
	start := c.now()
	var released atomic.Bool
	return func() {
		if released.Swap(true) {
			return
		}
		cs.service.Record(c.now().Sub(start))
		cs.depth.Add(-1)
	}, nil
}

// overload builds the typed rejection for one lane at the given depth.
func (c *Controller) overload(cs *classState, depth int64) *OverloadError {
	return &OverloadError{
		Class:      cs.class,
		Depth:      depth,
		Cap:        cs.cap,
		RetryAfter: c.retryAfter(cs, depth),
	}
}

// retryAfter estimates when a rejected caller should come back: the
// time for the lane's current depth to drain at the observed service
// rate — depth × mean service time ÷ parallelism — clamped to
// [1s, 60s]. With no observations yet (cold daemon mid-flood) the floor
// applies, which is exactly the "come back shortly" a cold queue wants.
func (c *Controller) retryAfter(cs *classState, depth int64) time.Duration {
	snap := cs.service.Snapshot()
	mean := snap.Mean()
	drain := time.Duration(depth) * mean / time.Duration(c.parallelism)
	if drain < minRetryAfter {
		return minRetryAfter
	}
	if drain > maxRetryAfter {
		return maxRetryAfter
	}
	return drain
}

// RetryAfter reports the current Retry-After hint for a class without
// rejecting anything — the serve layer stamps it on deadline sheds too,
// so a shed caller and a rejected caller get the same guidance.
func (c *Controller) RetryAfter(class Class) time.Duration {
	if c == nil {
		return minRetryAfter
	}
	cs := c.classes[class]
	if cs == nil {
		return minRetryAfter
	}
	return c.retryAfter(cs, cs.depth.Load())
}

// RecordShed counts one expired-on-arrival request against a class.
func (c *Controller) RecordShed(class Class) {
	if c == nil {
		return
	}
	if cs := c.classes[class]; cs != nil {
		cs.shed.Add(1)
		c.journal.Emit("admit", "shed", obs.SevWarn, "", "class", string(class))
	}
}

// Depth reports how many requests a class currently has admitted.
func (c *Controller) Depth(class Class) int64 {
	if c == nil {
		return 0
	}
	cs := c.classes[class]
	if cs == nil {
		return 0
	}
	return cs.depth.Load()
}

// SetDraining flips shutdown mode: while draining, every Admit rejects
// with the usual typed overload error so keep-alive clients are told to
// retry elsewhere instead of queueing behind a closing listener.
// Already-admitted work is unaffected and drains normally.
func (c *Controller) SetDraining(v bool) {
	if c == nil {
		return
	}
	if c.draining.Swap(v) != v {
		c.journal.Emit("admit", "draining", obs.SevWarn, "",
			"on", strconv.FormatBool(v))
	}
}

// ClassStats is one lane's slice of Stats.
type ClassStats struct {
	Class Class `json:"class"`
	// Cap is the lane's admission bound; Depth the current admitted
	// count (queued + executing).
	Cap   int64 `json:"cap"`
	Depth int64 `json:"depth"`
	// Admitted / Rejected / DeadlineSheds are lifetime counters.
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
	DeadlineSheds int64 `json:"deadlineSheds"`
	// MeanServiceMS is the observed mean service time feeding the
	// Retry-After arithmetic.
	MeanServiceMS float64 `json:"meanServiceMs"`
	// RetryAfterMS is the hint a rejection issued right now would carry.
	RetryAfterMS float64 `json:"retryAfterMs"`
}

// Stats is the controller's GET /metrics block.
type Stats struct {
	Draining bool         `json:"draining"`
	Classes  []ClassStats `json:"classes"`
}

// Stats snapshots every lane.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{Draining: c.draining.Load()}
	for _, cs := range c.order {
		depth := cs.depth.Load()
		s.Classes = append(s.Classes, ClassStats{
			Class:         cs.class,
			Cap:           cs.cap,
			Depth:         depth,
			Admitted:      cs.admitted.Load(),
			Rejected:      cs.rejected.Load(),
			DeadlineSheds: cs.shed.Load(),
			MeanServiceMS: float64(cs.service.Snapshot().Mean()) / float64(time.Millisecond),
			RetryAfterMS:  float64(c.retryAfter(cs, depth)) / float64(time.Millisecond),
		})
	}
	return s
}
