package admit

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func TestDeadlineRoundTrip(t *testing.T) {
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	dl := now.Add(90 * time.Second)

	got, ok := ParseDeadline(FormatDeadline(dl), now)
	if !ok {
		t.Fatal("round-tripped deadline did not parse")
	}
	if !got.Equal(dl.Truncate(time.Millisecond)) {
		t.Fatalf("round trip = %v, want %v", got, dl)
	}
}

func TestDeadlineHostileValuesParseToNoDeadline(t *testing.T) {
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, value string
	}{
		{"empty", ""},
		{"garbage", "soon"},
		{"float", "1754647200.5"},
		{"negative", "-1754647200000"},
		{"zero", "0"},
		{"overflow", "99999999999999999999999999"},
		{"max-int64", strconv.FormatInt(1<<62, 10)},
		{"too-far-future", FormatDeadline(now.Add(MaxDeadlineAhead + time.Hour))},
		{"trailing-junk", "1754647200000x"},
		{"whitespace", " 1754647200000"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if dl, ok := ParseDeadline(tc.value, now); ok {
				t.Fatalf("ParseDeadline(%q) = %v, ok=true; want no deadline", tc.value, dl)
			}
		})
	}
}

func TestDeadlineExpiredStillParses(t *testing.T) {
	// A deadline in the past is valid — it is the expired-on-arrival
	// signal the serve layer sheds on, not a malformed value.
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	past := now.Add(-5 * time.Second)
	got, ok := ParseDeadline(FormatDeadline(past), now)
	if !ok {
		t.Fatal("past deadline should parse ok")
	}
	if !got.Before(now) {
		t.Fatalf("parsed %v, want before %v", got, now)
	}
}

func TestInjectAndFromRequest(t *testing.T) {
	now := time.Now()
	dl := now.Add(30 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()

	req, _ := http.NewRequest(http.MethodPost, "http://peer/v1/run", nil)
	Inject(req, ctx)
	got, ok := FromRequest(req, now)
	if !ok {
		t.Fatal("injected deadline did not round-trip through the request")
	}
	if d := got.Sub(dl); d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("deadline drifted %v through inject/extract", d)
	}

	// No ctx deadline → no header.
	req2, _ := http.NewRequest(http.MethodPost, "http://peer/v1/run", nil)
	Inject(req2, context.Background())
	if h := req2.Header.Get(DeadlineHeader); h != "" {
		t.Fatalf("header set without ctx deadline: %q", h)
	}
}

func TestWithDeadlineOnlyTightens(t *testing.T) {
	now := time.Now()
	tight := now.Add(1 * time.Second)
	loose := now.Add(10 * time.Second)

	// Parent already tighter: wire deadline must not extend it.
	parent, cancel := context.WithDeadline(context.Background(), tight)
	defer cancel()
	ctx, cancel2 := WithDeadline(parent, loose)
	defer cancel2()
	if dl, ok := ctx.Deadline(); !ok || dl.After(tight) {
		t.Fatalf("deadline extended to %v past parent %v", dl, tight)
	}

	// Parent looser: wire deadline tightens.
	parent2, cancel3 := context.WithDeadline(context.Background(), loose)
	defer cancel3()
	ctx2, cancel4 := WithDeadline(parent2, tight)
	defer cancel4()
	if dl, ok := ctx2.Deadline(); !ok || !dl.Equal(tight) {
		t.Fatalf("deadline = %v, want tightened to %v", dl, tight)
	}
}
