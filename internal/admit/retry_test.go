package admit

import (
	"testing"
	"time"
)

func TestRetryBudgetSpendAndRefill(t *testing.T) {
	clock := newFakeClock()
	b := NewRetryBudget(2, 1.0, clock.Now) // 2 burst, 1 token/s

	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens should allow")
	}
	if b.Allow() {
		t.Fatal("third retry should be denied: budget exhausted")
	}

	// Refill at 1 token/s: after 500ms still denied, after 1s allowed.
	clock.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before a full token refilled")
	}
	clock.Advance(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("denied after a full token refilled")
	}

	// Refill never exceeds burst.
	clock.Advance(time.Hour)
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst should be available after long idle")
	}
	if b.Allow() {
		t.Fatal("idle refill exceeded burst capacity")
	}

	spent, denied := b.Counters()
	if spent != 5 || denied != 3 {
		t.Fatalf("counters = (%d spent, %d denied), want (5, 3)", spent, denied)
	}
}

func TestRetryBudgetNeverExceedsBudget(t *testing.T) {
	// Acceptance criterion: a dead backend hammered with N failures sees
	// at most burst + refill·elapsed retries, never one per failure.
	clock := newFakeClock()
	b := NewRetryBudget(4, 0.5, clock.Now)

	allowed := 0
	for i := 0; i < 100; i++ {
		if b.Allow() {
			allowed++
		}
		clock.Advance(100 * time.Millisecond) // 10 failures/s against 0.5 tokens/s
	}
	// 4 burst + 0.5/s × 10s ≈ 9; leave headroom for boundary effects.
	if allowed > 10 {
		t.Fatalf("allowed %d retries across 100 failures, budget should cap near 9", allowed)
	}
	if allowed < 4 {
		t.Fatalf("allowed %d, burst of 4 should always be spendable", allowed)
	}
}

func TestNilBudgetAlwaysAllows(t *testing.T) {
	var b *RetryBudget
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatal("nil budget must always allow")
		}
	}
}

func TestBackoffDecorrelatedJitterSpacing(t *testing.T) {
	// Deterministic rand at the top of the range: delays grow 3× per
	// step (the decorrelated recurrence's ceiling) and clamp at cap.
	b := NewBackoff(100*time.Millisecond, 2*time.Second, func() float64 { return 1.0 })

	var prev time.Duration
	for i := 0; i < 10; i++ {
		d := b.Next()
		if d < 100*time.Millisecond || d > 2*time.Second {
			t.Fatalf("step %d: delay %v outside [base, cap]", i, d)
		}
		if i > 0 && d < prev && prev < 2*time.Second {
			t.Fatalf("step %d: delay %v shrank from %v before reaching cap", i, d, prev)
		}
		prev = d
	}
	if prev != 2*time.Second {
		t.Fatalf("after 10 steps delay = %v, want clamped at cap", prev)
	}

	// Reset restarts the ladder: first delay back in [base, 3·base].
	b.Reset()
	if d := b.Next(); d > 300*time.Millisecond {
		t.Fatalf("post-reset first delay %v, want within 3x base", d)
	}
}

func TestBackoffJitterVaries(t *testing.T) {
	// With real randomness replaced by a sequence, distinct draws give
	// distinct delays — callers decorrelate instead of thundering.
	seq := []float64{0.1, 0.9, 0.5}
	i := 0
	b := NewBackoff(100*time.Millisecond, 10*time.Second, func() float64 {
		v := seq[i%len(seq)]
		i++
		return v
	})
	seen := map[time.Duration]bool{}
	for j := 0; j < 3; j++ {
		seen[b.Next()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("3 draws produced %d distinct delays, want jittered spread", len(seen))
	}
}

func TestBackoffNilSafe(t *testing.T) {
	var b *Backoff
	if d := b.Next(); d != 0 {
		t.Fatalf("nil backoff Next = %v, want 0", d)
	}
	b.Reset()
}
