package admit

import (
	"math/rand"
	"sync"
	"time"
)

// RetryBudget is a token bucket bounding how fast a caller may retry
// against one backend. Retries spend from the bucket; the bucket
// refills at a steady rate, so a dead backend sees at most the refill
// rate of extra pressure instead of one retry per failed request —
// retry amplification decays exactly when the backend is sickest.
// A nil *RetryBudget always allows (legacy behavior preserved).
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time
	spent  int64
	denied int64
}

// DefaultRetryBurst / DefaultRetryRate: allow a short burst of retries
// during a transient blip, then throttle to one every two seconds.
const (
	DefaultRetryBurst = 4
	DefaultRetryRate  = 0.5
)

// NewRetryBudget builds a bucket holding burst tokens refilled at rate
// per second, starting full. Non-positive arguments use the defaults;
// now is the clock (nil uses time.Now, tests inject a fake).
func NewRetryBudget(burst int, rate float64, now func() time.Time) *RetryBudget {
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	if rate <= 0 {
		rate = DefaultRetryRate
	}
	if now == nil {
		now = time.Now
	}
	return &RetryBudget{
		tokens: float64(burst),
		burst:  float64(burst),
		rate:   rate,
		last:   now(),
		now:    now,
	}
}

// Allow consumes one token if available. false means the budget is
// exhausted and the caller must skip the retry (fall back, don't wait).
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Counters reports lifetime spent/denied tokens (for stats exposure).
func (b *RetryBudget) Counters() (spent, denied int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.denied
}

// Backoff produces decorrelated-jitter delays (AWS style):
//
//	sleep = min(cap, rand(base, prev*3))
//
// Consecutive failures push the delay up exponentially on average while
// the jitter decorrelates callers, so a recovering backend sees a
// spread-out trickle of probes rather than a synchronized thundering
// herd. A nil *Backoff yields zero delays.
type Backoff struct {
	mu   sync.Mutex
	base time.Duration
	cap  time.Duration
	prev time.Duration
	rand func() float64
}

// DefaultBackoffBase / DefaultBackoffCap bound probe cadence: first
// retry ~250ms out, never more than 30s between probes.
const (
	DefaultBackoffBase = 250 * time.Millisecond
	DefaultBackoffCap  = 30 * time.Second
)

// NewBackoff builds a backoff with the given base and cap (non-positive
// uses the defaults). rnd returns uniform [0,1); nil uses math/rand.
func NewBackoff(base, capD time.Duration, rnd func() float64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if capD <= 0 {
		capD = DefaultBackoffCap
	}
	if capD < base {
		capD = base
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	return &Backoff{base: base, cap: capD, rand: rnd}
}

// Next returns the delay to wait before the next attempt, advancing the
// decorrelated state.
func (b *Backoff) Next() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := b.prev
	if prev < b.base {
		prev = b.base
	}
	hi := 3 * prev
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d = b.base + time.Duration(b.rand()*float64(hi-b.base))
	}
	if d > b.cap {
		d = b.cap
	}
	b.prev = d
	return d
}

// Reset returns the backoff to its initial state after a success, so
// the next failure starts the ladder from base again.
func (b *Backoff) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.prev = 0
	b.mu.Unlock()
}
