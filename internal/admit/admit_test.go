package admit

import (
	"errors"
	"sync"
	"testing"
	"time"

	"javaflow/internal/obs"
)

// fakeClock is a manually-advanced time source shared by the tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmitCapRejectsNewest(t *testing.T) {
	c := New(Options{RunCap: 2, Now: newFakeClock().Now})

	// Oldest arrivals fill the lane and keep their slots.
	rel1, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	rel2, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}

	// Newest arrival at cap is the one rejected, typed.
	_, err = c.Admit(ClassRun)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("over-cap admit: got %v, want *OverloadError", err)
	}
	if oe.Class != ClassRun || oe.Cap != 2 || oe.Depth != 2 {
		t.Fatalf("overload error = %+v, want class=run cap=2 depth=2", oe)
	}
	if oe.RetryAfterSeconds() < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", oe.RetryAfterSeconds())
	}

	// The oldest-queued request completes; only then does a new arrival
	// get its slot.
	rel1()
	rel3, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel3()
	rel2()

	if got := c.Depth(ClassRun); got != 0 {
		t.Fatalf("depth after all releases = %d, want 0", got)
	}
	st := c.Stats()
	if st.Classes[0].Admitted != 3 || st.Classes[0].Rejected != 1 {
		t.Fatalf("stats = %+v, want admitted=3 rejected=1", st.Classes[0])
	}
}

func TestAdmitClassesAreIndependentLanes(t *testing.T) {
	c := New(Options{RunCap: 1, BatchCap: 1, ReplicateCap: 1})
	rel, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("run admit: %v", err)
	}
	defer rel()
	if _, err := c.Admit(ClassRun); err == nil {
		t.Fatal("second run admit should reject at cap 1")
	}
	// A saturated run lane must not starve batch or replicate.
	for _, class := range []Class{ClassBatch, ClassReplicate} {
		r, err := c.Admit(class)
		if err != nil {
			t.Fatalf("%s admit with run lane full: %v", class, err)
		}
		r()
	}
}

func TestRetryAfterArithmetic(t *testing.T) {
	clock := newFakeClock()
	c := New(Options{RunCap: 8, Parallelism: 2, Now: clock.Now})

	// No observations yet: floor applies.
	if got := c.RetryAfter(ClassRun); got != minRetryAfter {
		t.Fatalf("cold RetryAfter = %v, want %v", got, minRetryAfter)
	}

	// File four 4s services, so mean = 4s.
	for i := 0; i < 4; i++ {
		rel, err := c.Admit(ClassRun)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		clock.Advance(4 * time.Second)
		rel()
	}

	// depth=8, mean=4s, parallelism=2 → 16s drain estimate.
	var rels []func()
	for i := 0; i < 8; i++ {
		rel, err := c.Admit(ClassRun)
		if err != nil {
			t.Fatalf("fill admit %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	_, err := c.Admit(ClassRun)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("over-cap: got %v", err)
	}
	if want := 16 * time.Second; oe.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v (8 deep × 4s mean ÷ 2 workers)", oe.RetryAfter, want)
	}
	if got := oe.RetryAfterSeconds(); got != 16 {
		t.Fatalf("RetryAfterSeconds = %d, want 16", got)
	}
	for _, rel := range rels {
		rel()
	}

	// The ceiling clamps absurd drain estimates.
	slow := New(Options{RunCap: 4, Parallelism: 1, Now: clock.Now})
	rel, _ := slow.Admit(ClassRun)
	clock.Advance(10 * time.Minute)
	rel()
	r2, _ := slow.Admit(ClassRun)
	defer r2()
	if got := slow.RetryAfter(ClassRun); got != maxRetryAfter {
		t.Fatalf("clamped RetryAfter = %v, want %v", got, maxRetryAfter)
	}
}

func TestAdmitReleaseIdempotent(t *testing.T) {
	c := New(Options{RunCap: 1})
	rel, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not go negative or free a phantom slot
	if got := c.Depth(ClassRun); got != 0 {
		t.Fatalf("depth after double release = %d, want 0", got)
	}
}

func TestAdmitDraining(t *testing.T) {
	c := New(Options{RunCap: 4})
	rel, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("pre-drain admit: %v", err)
	}
	c.SetDraining(true)
	if _, err := c.Admit(ClassRun); err == nil {
		t.Fatal("draining controller admitted new work")
	}
	rel() // in-flight work still drains normally
	if got := c.Depth(ClassRun); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
	c.SetDraining(false)
	rel2, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("post-drain admit: %v", err)
	}
	rel2()
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, err := c.Admit(ClassRun)
	if err != nil {
		t.Fatalf("nil controller rejected: %v", err)
	}
	rel()
	c.RecordShed(ClassBatch)
	c.SetDraining(true)
	if got := c.Depth(ClassRun); got != 0 {
		t.Fatalf("nil depth = %d", got)
	}
	if s := c.Stats(); s.Draining || len(s.Classes) != 0 {
		t.Fatalf("nil stats = %+v", s)
	}
}

// TestConcurrentAdmitRelease hammers one lane from many goroutines;
// run with -race. The accounting must end balanced: depth 0, and
// admitted+rejected equal to the attempt count.
func TestConcurrentAdmitRelease(t *testing.T) {
	c := New(Options{RunCap: 8})
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rel, err := c.Admit(ClassRun)
				if err == nil {
					if d := c.Depth(ClassRun); d < 1 || d > 8 {
						t.Errorf("depth %d outside [1,8] while admitted", d)
					}
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Depth(ClassRun); got != 0 {
		t.Fatalf("final depth = %d, want 0", got)
	}
	st := c.Stats().Classes[0]
	if st.Admitted+st.Rejected != goroutines*perG {
		t.Fatalf("admitted %d + rejected %d != %d attempts", st.Admitted, st.Rejected, goroutines*perG)
	}
}

func TestControllerRegistersGauges(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{RunCap: 1, Registry: reg})
	rel, _ := c.Admit(ClassRun)
	defer rel()
	c.Admit(ClassRun) // one rejection

	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"javaflow_admit_queue_depth",
		"javaflow_admit_queue_cap",
		"javaflow_admit_admitted_total",
		"javaflow_admit_rejections_total",
		"javaflow_admit_deadline_sheds_total",
		"javaflow_admit_service_duration_seconds",
	} {
		if !names[want] {
			t.Errorf("registry missing %s (have %v)", want, reg.Names())
		}
	}
}
