package sim

import (
	"fmt"
	"sync/atomic"
)

// The event-driven engine core.
//
// The reference loop (Engine.RunReference) is O(nodes × cycles): every mesh
// cycle decrements every in-flight message and sweeps every node, even when
// nothing in the fabric can change. Between token arrivals and phase
// completions the machine is static, so this loop advances time to the next
// event instead of ticking every clock:
//
//   - serial and mesh messages are bucketed by absolute arrival clock in
//     timeQs, so an idle clock costs nothing and a bucket pops pre-grouped;
//   - tail release keeps a "rearmost live token" watermark (two fenwick
//     indices plus the single TAIL's tracked position) updated on token
//     moves, replacing the per-clock O(serialQ + nodes·held) scan;
//   - executing/service counters and scheduled completions replace the
//     per-cycle node sweep; BusyCycles/ParallelCycles accrue from the
//     counters;
//   - when the next arrival/completion is k cycles away the clock jumps by
//     k (quiesce windows fast-forward in one step), with the preemption
//     contract preserved by polling the context whenever a jump crosses a
//     preemptEvery boundary.
//
// Every Result field is computed exactly as the reference loop computes it;
// the differential tests assert byte-identical MethodRun encodings, which
// is what lets EngineVersion — and therefore every persisted store record —
// stay valid across this rewrite.

// EngineStats reports one engine run's activity.
type EngineStats struct {
	// MeshCycles is the simulated wall mesh-cycle count, including
	// skipped cycles.
	MeshCycles uint64
	// Events counts processed token arrivals, operand deliveries and
	// phase completions.
	Events uint64
	// CyclesSkipped counts mesh cycles fast-forwarded without per-cycle
	// work (eventless windows and quiesce stalls).
	CyclesSkipped uint64
}

// Stats returns the run's activity counters (event-driven loop only; the
// reference oracle does not account).
func (e *Engine) Stats() EngineStats { return e.stats }

// Process-wide engine throughput counters, aggregated at the end of every
// event-driven run. Exposed via TotalEngineStats for /metrics gauges and
// the jfbench summary.
var engineTotals struct {
	runs    atomic.Uint64
	cycles  atomic.Uint64
	events  atomic.Uint64
	skipped atomic.Uint64
}

// EngineTotals is the process-wide engine activity snapshot.
type EngineTotals struct {
	Runs                uint64 `json:"runs"`
	SimulatedMeshCycles uint64 `json:"simulatedMeshCycles"`
	Events              uint64 `json:"events"`
	CyclesSkipped       uint64 `json:"cyclesSkipped"`
}

// TotalEngineStats snapshots the process-wide engine counters.
func TotalEngineStats() EngineTotals {
	return EngineTotals{
		Runs:                engineTotals.runs.Load(),
		SimulatedMeshCycles: engineTotals.cycles.Load(),
		Events:              engineTotals.events.Load(),
		CyclesSkipped:       engineTotals.skipped.Load(),
	}
}

// finishStats closes out the run's accounting and folds it into the
// process totals.
func (e *Engine) finishStats(cycles int) {
	e.stats.MeshCycles = uint64(cycles)
	engineTotals.runs.Add(1)
	engineTotals.cycles.Add(e.stats.MeshCycles)
	engineTotals.events.Add(e.stats.Events)
	engineTotals.skipped.Add(e.stats.CyclesSkipped)
}

// distTables are the per-deployment distance lookups: nextD[i] is the
// serial hop to i+1, branchD[i] the serial distance to i's branch target,
// and meshD[meshOff[i]+k] the mesh distance to Targets[i][k].Consumer.
type distTables struct {
	nextD   []int32
	branchD []int32
	meshD   []int32
	meshOff []int32
}

// distFor builds the distance tables for this engine's deployment: an
// O(nodes + targets) pass, cheap enough to run per engine. (Not memoized
// by resolution pointer on purpose: LRU-evicted deployments re-resolve to
// fresh pointers, so a pointer-keyed cache would pin dead resolutions.)
func (e *Engine) distFor() *distTables {
	n := len(e.nodes)
	f, nodeOf := e.cfg.Fabric, e.placement.NodeOf
	total := 0
	for _, tgts := range e.resolution.Targets {
		total += len(tgts)
	}
	d := &distTables{
		nextD:   make([]int32, n),
		branchD: make([]int32, n),
		meshOff: make([]int32, n),
		meshD:   make([]int32, total),
	}
	off := 0
	for i := 0; i < n; i++ {
		if i+1 < n {
			d.nextD[i] = int32(f.SerialDistance(nodeOf[i], nodeOf[i+1]))
		}
		if mt := &e.meta[i]; mt.flags&metaBranch != 0 && mt.target >= 0 && int(mt.target) < n {
			d.branchD[i] = int32(f.SerialDistance(nodeOf[i], nodeOf[mt.target]))
		}
		d.meshOff[i] = int32(off)
		for _, tg := range e.resolution.Targets[i] {
			d.meshD[off] = int32(f.MeshDistance(nodeOf[i], nodeOf[tg.Consumer]))
			off++
		}
	}
	return d
}

// initEvent switches the engine into event mode, installs the
// per-deployment distance tables (so the inner loop never calls through
// fabric.Fabric per message) and zeroes the watermark index.
func (e *Engine) initEvent() {
	e.event = true
	e.liveAt = make([]int32, len(e.nodes))
	e.tailPos = -1
	d := e.distFor()
	e.nextD, e.branchD, e.meshD, e.meshOff = d.nextD, d.branchD, d.meshD, d.meshOff
}

// deliverSerialBucket pops the earliest serial bucket (serialNow must
// already equal its time) and processes its arrivals in the reference
// order: all same-clock messages leave the in-flight index first, then
// arrive sorted by (destination, kind).
func (e *Engine) deliverSerialBucket() {
	_, msgs := e.serialEv.takeMin()
	for _, msg := range msgs {
		if msg.tok.kind != tokTail {
			e.liveAt[msg.to]--
			if msg.to <= e.tailPos {
				e.liveBehind--
			}
		}
	}
	sortSerialArrivals(msgs)
	e.stats.Events += uint64(len(msgs))
	for _, msg := range msgs {
		e.tokenArrives(msg.tok, msg.to)
	}
	e.serialEv.recycle(msgs)
}

// skipTarget returns the earliest future wall cycle at which anything can
// happen: a serial arrival entering the cycle's serial budget, an operand
// delivery, a scheduled completion, a quiesce window opening, or the
// timeout bound. Returns cycle itself when this cycle has work.
func (e *Engine) skipTarget(cycle, budget int) int {
	target := e.maxCycles
	if e.quiesceFor > 0 && e.quiesceAt > cycle && e.quiesceAt < target {
		target = e.quiesceAt
	}
	if e.serialEv.n > 0 {
		sc := cycle
		if budget != DrainSerial {
			// The serial phase of cycle c covers absolute serial clocks
			// (serialNow, serialNow+budget]; an arrival at clock T lands
			// in the cycle floor((T-serialNow-1)/budget) ahead.
			sc += (e.serialEv.nextTime() - e.serialNow - 1) / budget
		}
		if sc < target {
			target = sc
		}
	}
	if e.meshEv.n > 0 {
		if mc := cycle + (e.meshEv.nextTime() - e.meshNow); mc < target {
			target = mc
		}
	}
	if e.doneEv.n > 0 {
		if dc := cycle + (e.doneEv.nextTime() - e.meshNow); dc < target {
			target = dc
		}
	}
	if target < cycle {
		target = cycle
	}
	return target
}

// pollPreemptBetween polls the context once if any preemptEvery boundary
// lies strictly between from and to (the loop head re-checks `to` itself).
func (e *Engine) pollPreemptBetween(from, to int) error {
	if e.preemptCtx == nil {
		return nil
	}
	if next := (from/preemptEvery + 1) * preemptEvery; next < to {
		return e.preemptCtx.Err()
	}
	return nil
}

// runEvent is the event-driven Run loop.
func (e *Engine) runEvent() (Result, error) {
	m := e.placement.Method
	res := Result{
		Config:    e.cfg.Name,
		Signature: m.Signature(),
		Static:    len(m.Code),
		MaxNode:   e.placement.MaxNode,
	}

	e.initEvent()
	e.injectBundle()

	budget := e.cfg.SerialPerMesh
	cycle := 0
	for {
		if e.preemptCtx != nil && cycle&(preemptEvery-1) == 0 {
			if err := e.preemptCtx.Err(); err != nil {
				e.finishStats(cycle)
				return Result{}, err
			}
		}
		if cycle >= e.maxCycles {
			res.MeshCycles = cycle
			res.Fired = e.fired
			res.TimedOut = true
			e.fillCoverage(&res)
			e.finishStats(cycle)
			return res, nil
		}

		// Quiesced fabric: everything freezes, wall cycles still elapse.
		// Fast-forward the whole window in one jump; queued arrivals stay
		// keyed on the active clocks, which do not advance here.
		if e.quiesceFor > 0 && cycle >= e.quiesceAt && cycle < e.quiesceAt+e.quiesceFor {
			end := e.quiesceAt + e.quiesceFor
			if end > e.maxCycles {
				end = e.maxCycles
			}
			if err := e.pollPreemptBetween(cycle, end); err != nil {
				e.finishStats(cycle)
				return Result{}, err
			}
			e.stats.CyclesSkipped += uint64(end - cycle)
			cycle = end
			continue
		}

		// Dead-time skip: when this cycle has no arrivals or completions
		// the machine state cannot change (tail releases reached their
		// fixpoint at the end of the previous cycle), so jump to the next
		// event, accruing busy counters and serial clocks arithmetically.
		// A fully drained machine must instead fall through and hit the
		// reference loop's stall error at this cycle.
		stalled := e.serialEv.n == 0 && e.meshEv.n == 0 &&
			e.executingCount == 0 && e.serviceCount == 0
		if !stalled {
			if target := e.skipTarget(cycle, budget); target > cycle {
				k := target - cycle
				if e.executingCount >= 1 {
					res.BusyCycles += k
				}
				if e.executingCount >= 2 {
					res.ParallelCycles += k
				}
				if budget != DrainSerial && e.serialEv.n > 0 {
					e.serialNow += k * budget
				}
				if err := e.pollPreemptBetween(cycle, target); err != nil {
					e.finishStats(cycle)
					return Result{}, err
				}
				e.stats.CyclesSkipped += uint64(k)
				cycle = target
				e.meshNow += k
				e.meshTick += k
				continue
			}
		}

		// --- Serial phase: up to SerialPerMesh serial clocks (or drain
		// for the Baseline rule), jumping over arrival-free clocks. ---
		if budget == DrainSerial {
			for {
				e.releasePendingTails()
				if e.serialEv.n == 0 {
					break
				}
				e.serialNow = e.serialEv.nextTime()
				e.deliverSerialBucket()
			}
		} else {
			phaseStart := e.serialNow
			for used := 0; used < budget; {
				e.releasePendingTails()
				if e.serialEv.n == 0 {
					break
				}
				t := e.serialEv.nextTime()
				if t > phaseStart+budget {
					// The queue stays non-empty, so the remaining
					// budget elapses without arrivals.
					e.serialNow = phaseStart + budget
					break
				}
				e.serialNow = t
				used = t - phaseStart
				e.deliverSerialBucket()
			}
		}
		e.releasePendingTails()

		// --- Mesh phase. This cycle's decrement pass happens now:
		// anything pushed from here on is first decremented next cycle.
		e.meshTick++
		if e.meshEv.n > 0 && e.meshEv.nextTime() == e.meshNow {
			_, msgs := e.meshEv.takeMin()
			sortMeshArrivals(msgs)
			e.stats.Events += uint64(len(msgs))
			for _, msg := range msgs {
				e.meshDeliver(msg)
			}
			e.meshEv.recycle(msgs)
		}
		// Busy accounting snapshots the counters after deliveries and
		// before completions — exactly the set of nodes the reference
		// sweep finds in their execution phase this cycle.
		if e.executingCount >= 1 {
			res.BusyCycles++
		}
		if e.executingCount >= 2 {
			res.ParallelCycles++
		}
		if e.doneEv.n > 0 && e.doneEv.nextTime() == e.meshNow {
			_, evs := e.doneEv.takeMin()
			sortCompletions(evs)
			for _, ev := range evs {
				n := &e.nodes[ev.node]
				if n.gen != ev.gen {
					continue // node reset since this was scheduled
				}
				e.stats.Events++
				switch n.phase {
				case phaseExecuting:
					e.completeExecution(ev.node)
				case phaseService:
					e.completeService(ev.node)
				}
			}
			e.doneEv.recycle(evs)
		}
		e.releasePendingTails()

		if e.finished {
			res.MeshCycles = cycle + 1
			res.Fired = e.fired
			e.fillCoverage(&res)
			e.finishStats(cycle + 1)
			return res, nil
		}
		if e.serialEv.n == 0 && e.meshEv.n == 0 &&
			e.executingCount == 0 && e.serviceCount == 0 {
			e.finishStats(cycle + 1)
			return res, fmt.Errorf("sim: %s stalled on %s at mesh cycle %d",
				m.Signature(), e.cfg.Name, cycle)
		}
		cycle++
		e.meshNow++ // meshTick already advanced at the mesh phase
	}
}
