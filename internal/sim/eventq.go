package sim

// Time-indexed containers for the event-driven engine core.
//
// The reference loop pays for every clock: each serial/mesh tick decrements
// every in-flight message and re-sorts the arrivals. The event-driven loop
// instead keys every message on its absolute arrival clock at send time and
// stores it in a timeQ — a bucket queue whose distinct pending times form a
// sorted list — so an idle clock costs nothing and a bucket pops already
// grouped by arrival time. Within a bucket, items keep insertion order,
// which is exactly the reference queue's order among same-clock arrivals;
// the small stable insertion sorts below then reproduce the reference's
// deterministic processing order without sort.SliceStable's closure
// allocations.

// tbucket is one pending arrival time and its FIFO payload.
type tbucket[T any] struct {
	t     int
	items []T
}

// timeQ is a bucket queue over absolute clock values. Buckets are held by
// value in ascending time order starting at head; spent slots before head
// are reclaimed lazily so pop-min is O(1). Pushes search backwards from
// the newest time (sends cluster a few clocks ahead of now) and memmove
// the short tail when a new time opens. Item slices recycle through a free
// list, keeping steady-state allocation at zero.
type timeQ[T any] struct {
	asc  []tbucket[T]
	head int
	free [][]T
	n    int // total queued items
}

// push enqueues v at absolute time t.
func (q *timeQ[T]) push(t int, v T) {
	q.n++
	j := len(q.asc) - 1
	for j >= q.head && q.asc[j].t > t {
		j--
	}
	if j >= q.head && q.asc[j].t == t {
		q.asc[j].items = append(q.asc[j].items, v)
		return
	}
	var items []T
	if k := len(q.free); k > 0 {
		items = q.free[k-1]
		q.free = q.free[:k-1]
	} else {
		items = make([]T, 0, 8)
	}
	items = append(items, v)
	q.asc = append(q.asc, tbucket[T]{})
	copy(q.asc[j+2:], q.asc[j+1:])
	q.asc[j+1] = tbucket[T]{t: t, items: items}
}

// nextTime returns the earliest pending time; only valid when n > 0.
func (q *timeQ[T]) nextTime() int { return q.asc[q.head].t }

// takeMin detaches and returns the earliest bucket's time and items. The
// caller processes the items and hands the slice back via recycle.
func (q *timeQ[T]) takeMin() (int, []T) {
	b := q.asc[q.head]
	q.asc[q.head].items = nil
	q.head++
	if q.head == len(q.asc) {
		q.asc = q.asc[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 > len(q.asc) {
		kept := copy(q.asc, q.asc[q.head:])
		q.asc = q.asc[:kept]
		q.head = 0
	}
	q.n -= len(b.items)
	return b.t, b.items
}

// recycle returns a taken bucket's item slice to the free list.
func (q *timeQ[T]) recycle(items []T) {
	q.free = append(q.free, items[:0])
}

// sortSerialArrivals stably orders same-clock serial arrivals by
// (destination, token kind) — the reference loop's processing order.
// Buckets are small (a handful of tokens), so stable insertion sort beats
// sort.SliceStable and allocates nothing.
func sortSerialArrivals(a []serialMsg) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0; j-- {
			if a[j].to > a[j-1].to ||
				(a[j].to == a[j-1].to && a[j].tok.kind >= a[j-1].tok.kind) {
				break
			}
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sortMeshArrivals stably orders same-cycle operand deliveries by consumer.
func sortMeshArrivals(a []meshMsg) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].to < a[j-1].to; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sortCompletions orders same-cycle phase completions by node index — the
// reference loop's ascending node sweep.
func sortCompletions(a []completion) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].node < a[j-1].node; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sortTokensByKind stably orders a held-token buffer by kind, the release
// order of Section 6.3 (HEAD, MEMORY, REGISTERs, TAIL). Shared by both
// engine loops; buffers hold at most the full bundle.
func sortTokensByKind(a []token) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].kind < a[j-1].kind; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
