// Package sim is the cycle-level execution simulator of Chapter 7: it runs
// resolved methods through a configured DataFlow Fabric under the token-
// bundle execution model of Section 6.3, with two clock domains (N serial
// clocks per mesh clock), the Table 17 execution latencies, the Figure 25
// transit/service times, and the BP1/BP2 branch-prediction methodology,
// measuring IPC, Figure of Merit, coverage and parallelism.
//
// The load-bearing invariant is byte-identity across execution loops:
// the event-driven core (Engine.Run) and the clock-by-clock reference
// loop (Engine.RunReference) must produce identical Results and
// identical encoded MethodRun bytes for every method, configuration,
// branch policy, folding setting and quiesce schedule. Any change that
// can alter a Result must bump EngineVersion so persisted store records
// become misses instead of silently replaying stale semantics; a pure
// performance change that passes the differential suite must not.
package sim

import (
	"javaflow/internal/bytecode"
	"javaflow/internal/fabric"
)

// DrainSerial marks the Baseline clocking rule: "allow all serial clocks to
// proceed until there are no more serial messages queued for any nodes."
const DrainSerial = 0

// Config is one machine configuration under measurement (Table 15).
type Config struct {
	Name string
	// Fabric geometry (node pattern, width, collapsed flag).
	Fabric *fabric.Fabric
	// SerialPerMesh is the maximum serial clocks run between mesh clocks
	// (DrainSerial = unbounded, the Baseline rule).
	SerialPerMesh int
	Description   string
}

// Configurations returns the six studied configurations of Table 15.
func Configurations() []Config {
	baseline := fabric.NewFabric(10, fabric.PatternCompact)
	baseline.Collapsed = true
	return []Config{
		{
			Name: "Baseline", Fabric: baseline, SerialPerMesh: DrainSerial,
			Description: "Collapsed DataFlow machine where dataflow distance is 1 and all serial traffic is moved before next mesh clock",
		},
		{
			Name: "Compact10", Fabric: fabric.NewFabric(10, fabric.PatternCompact), SerialPerMesh: 10,
			Description: "DataFlow mesh 10 units wide, up to 10 serial clocks between each mesh clock",
		},
		{
			Name: "Compact4", Fabric: fabric.NewFabric(10, fabric.PatternCompact), SerialPerMesh: 4,
			Description: "DataFlow mesh 10 units wide; up to 4 serial clocks between each mesh clock",
		},
		{
			Name: "Compact2", Fabric: fabric.NewFabric(10, fabric.PatternCompact), SerialPerMesh: 2,
			Description: "DataFlow mesh 10 units wide; up to 2 serial clocks between each mesh clock",
		},
		{
			Name: "Sparse2", Fabric: fabric.NewFabric(10, fabric.PatternSparse), SerialPerMesh: 2,
			Description: "Compact2 with each Instruction Node separated by a blank node",
		},
		{
			Name: "Hetero2", Fabric: fabric.NewFabric(10, fabric.PatternHetero), SerialPerMesh: 2,
			Description: "Compact2 with mesh nodes configured on the static instruction mix (6 arithmetic, 1 floating point, 2 storage, 1 control) and automatically assigned",
		},
	}
}

// Execution latencies in mesh cycles (Table 17).
const (
	CyclesMove    = 1
	CyclesFloat   = 10
	CyclesConvert = 5
	CyclesDefault = 2 // "Special, Logical, Register, Memory"
	// MemoryServiceCycles is the load/store round trip over the storage
	// ring (Figure 25's service time; reads stall, writes post).
	MemoryServiceCycles = 10
	// GPPServiceCycles covers calls, returns-to-GPP and Service
	// instructions delegated to the General Purpose Processor.
	GPPServiceCycles = 20
)

// ExecCycles maps an instruction group to its Table 17 execution latency.
func ExecCycles(g bytecode.Group) int {
	switch g {
	case bytecode.GroupMove:
		return CyclesMove
	case bytecode.GroupFloatArith:
		return CyclesFloat
	case bytecode.GroupFloatConv:
		return CyclesConvert
	default:
		return CyclesDefault
	}
}

// BranchPolicy selects the pre-established branch behaviour of the
// measurement methodology ("BP1 started with the first forward jump taken
// while BP2 started with the first jump not taken. In all cases back jumps
// had a taken percentage of 90%").
type BranchPolicy uint8

const (
	BP1 BranchPolicy = iota
	BP2
)

func (b BranchPolicy) String() string {
	if b == BP1 {
		return "BP-1"
	}
	return "BP-2"
}

// Predictor replays the deterministic branch pattern for one method
// execution.
type Predictor struct {
	policy BranchPolicy
	fwd    map[int]bool // per-site next forward decision
	back   map[int]int  // per-site back-jump counter
}

// NewPredictor returns a fresh pattern generator.
func NewPredictor(p BranchPolicy) *Predictor {
	return &Predictor{policy: p, fwd: make(map[int]bool), back: make(map[int]int)}
}

// Forward returns the next taken/not-taken decision for a forward jump at
// site: a per-site 50% alternation seeded by the policy.
func (p *Predictor) Forward(site int) bool {
	taken, seen := p.fwd[site]
	if !seen {
		taken = p.policy == BP1
	}
	p.fwd[site] = !taken
	return taken
}

// Backward returns the decision for a back jump at site: taken 9 times out
// of 10.
func (p *Predictor) Backward(site int) bool {
	c := p.back[site]
	p.back[site] = c + 1
	return c%10 != 9
}
