package sim

import (
	"context"
	"fmt"
	"sort"

	"javaflow/internal/bytecode"
	"javaflow/internal/fabric"
)

// DefaultMaxMeshCycles bounds one method execution; methods that exceed it
// are reported as timed out and filtered from results, as the dissertation
// filtered endless-loop cases (Section 7.3, Simulation Structure).
const DefaultMaxMeshCycles = 2_000_000

// preemptEvery is how often (in mesh cycles) a preemptible engine polls its
// context. A power of two so the check is a mask, not a division; at ~4096
// cycles the poll adds one atomic load per few hundred thousand token moves,
// while a cancelled 2M-cycle method aborts within a fraction of a percent of
// its full budget instead of running to completion.
const preemptEvery = 4096

// tokenKind identifies a member of the token bundle (Figure 23).
type tokenKind uint8

const (
	tokHead tokenKind = iota
	tokMemory
	tokRegister
	tokTail
)

func (k tokenKind) String() string {
	switch k {
	case tokHead:
		return "HEAD"
	case tokMemory:
		return "MEMORY"
	case tokRegister:
		return "REGISTER"
	default:
		return "TAIL"
	}
}

// token is one serial-bundle element in flight or held at a node.
type token struct {
	kind tokenKind
	reg  int // register number for tokRegister
}

// serialMsg is a token travelling the ordered network.
type serialMsg struct {
	tok   token
	to    int // destination instruction index
	delay int // serial clocks remaining
}

// meshMsg is a producer→consumer operand transfer.
type meshMsg struct {
	to    int // consumer instruction index
	delay int // mesh cycles remaining
}

// nodePhase tracks an Instruction Data Unit's execution lifecycle.
type nodePhase uint8

const (
	phaseReady nodePhase = iota
	phaseExecuting
	phaseService // storage read or GPP service outstanding
	phaseFired
)

// nodeState is the per-instruction Instruction Data Unit state (Figure 13).
type nodeState struct {
	phase        nodePhase
	headSeen     bool
	popsReceived int
	memSeen      bool
	regSeen      bool // matching REGISTER_TOKEN held (local read/inc)
	held         []token
	execLeft     int
	serviceLeft  int
	// decision caches the control-flow outcome chosen at fire time.
	decisionTaken bool
	firedOnce     bool // coverage accounting across loop iterations
}

// Result reports one simulated method execution.
type Result struct {
	Config     string
	Signature  string
	Policy     BranchPolicy
	Fired      int // dynamic instructions executed
	Distinct   int // distinct static sites fired (coverage numerator)
	Static     int
	MeshCycles int
	// ParallelCycles counts mesh cycles with >= 2 nodes in their
	// execution phase (service time excluded, as in Table 26).
	ParallelCycles int
	// BusyCycles counts mesh cycles with >= 1 node executing.
	BusyCycles int
	MaxNode    int
	TimedOut   bool
}

// IPC is instructions per mesh cycle.
func (r Result) IPC() float64 {
	if r.MeshCycles == 0 {
		return 0
	}
	return float64(r.Fired) / float64(r.MeshCycles)
}

// Coverage is the fraction of static instructions that fired (Table 18).
func (r Result) Coverage() float64 {
	if r.Static == 0 {
		return 0
	}
	return float64(r.Distinct) / float64(r.Static)
}

// Parallelism is the fraction of mesh cycles with two or more instructions
// executing (Table 26).
func (r Result) Parallelism() float64 {
	if r.MeshCycles == 0 {
		return 0
	}
	return float64(r.ParallelCycles) / float64(r.MeshCycles)
}

// Engine simulates one method execution on one configuration.
type Engine struct {
	cfg        Config
	placement  *fabric.Placement
	resolution *fabric.Resolution
	predictor  *Predictor

	nodes   []nodeState
	serialQ []serialMsg
	meshQ   []meshMsg

	maxCycles int
	fired     int
	finished  bool

	// Quiesce models the QUIESE_TOKEN / RESETADDRESS_TOKEN flow
	// (Section 6.2 "Management and Cleanup", Section 6.4): at
	// quiesceAt the GPP halts the fabric for quiesceFor mesh cycles
	// (e.g. a garbage collection re-deriving heap pointers), after which
	// execution resumes with all in-fabric state intact.
	quiesceAt  int
	quiesceFor int

	// preemptCtx, when non-nil, is polled every preemptEvery mesh cycles
	// so a long-running execution aborts mid-run on cancellation instead
	// of only between jobs.
	preemptCtx context.Context

	// foldTransfers enables the Section 6.4 folding enhancement upper
	// bound: pure data-transfer nodes (register reads and stack moves)
	// "declare themselves void" — they fire in zero execution cycles and
	// are not counted as executed instructions, modelling their
	// elimination after the linkage process.
	foldTransfers bool
}

// NewEngine prepares an execution. The placement must come from the same
// fabric as cfg.
func NewEngine(cfg Config, res *fabric.Resolution, policy BranchPolicy) *Engine {
	return &Engine{
		cfg:        cfg,
		placement:  res.Placement,
		resolution: res,
		predictor:  NewPredictor(policy),
		nodes:      make([]nodeState, len(res.Placement.Method.Code)),
		maxCycles:  DefaultMaxMeshCycles,
	}
}

// SetMaxCycles overrides the timeout bound.
func (e *Engine) SetMaxCycles(n int) { e.maxCycles = n }

// ScheduleQuiesce arranges a fabric-wide stall of the given duration
// starting at the given mesh cycle — the QUIESE_TOKEN mechanism a garbage
// collection would use before RESETADDRESS_TOKEN re-derives memory
// pointers. Execution state is preserved across the stall.
func (e *Engine) ScheduleQuiesce(atCycle, duration int) {
	e.quiesceAt = atCycle
	e.quiesceFor = duration
}

// EnableFolding turns on the Section 6.4 folding-enhancement model.
func (e *Engine) EnableFolding() { e.foldTransfers = true }

// SetPreempt arranges for Run to poll ctx every preemptEvery mesh cycles
// and return ctx.Err() mid-execution once it is cancelled. A nil ctx (the
// default) disables the check entirely.
func (e *Engine) SetPreempt(ctx context.Context) { e.preemptCtx = ctx }

// foldable reports whether instruction i is a pure data transfer the
// folding enhancement eliminates.
func (e *Engine) foldable(i int) bool {
	if !e.foldTransfers {
		return false
	}
	switch e.code(i).Group() {
	case bytecode.GroupLocalRead, bytecode.GroupMove:
		return true
	}
	return false
}

func (e *Engine) code(i int) bytecode.Instruction {
	return e.placement.Method.Code[i]
}

func (e *Engine) serialDist(from, to int) int {
	return e.cfg.Fabric.SerialDistance(e.placement.NodeOf[from], e.placement.NodeOf[to])
}

func (e *Engine) meshDist(from, to int) int {
	return e.cfg.Fabric.MeshDistance(e.placement.NodeOf[from], e.placement.NodeOf[to])
}

// isControl reports whether instruction i buffers the token bundle until it
// fires (Section 6.3, Control Flow Operations). Calls pass tokens through
// (only TAIL is buffered), so they are not control for buffering purposes.
func (e *Engine) isControl(i int) bool {
	switch e.code(i).Group() {
	case bytecode.GroupControl, bytecode.GroupReturn:
		return true
	}
	return false
}

// isOrderedStorage reports whether instruction i participates in
// MEMORY_TOKEN ordering: array and field accesses, but not constant-pool
// loads ("unordered constant access to the Method Area").
func (e *Engine) isOrderedStorage(i int) bool {
	switch e.code(i).Group() {
	case bytecode.GroupMemRead, bytecode.GroupMemWrite:
		return true
	}
	return false
}

// Run simulates the method to completion (a Return fires) or timeout.
func (e *Engine) Run() (Result, error) {
	m := e.placement.Method
	res := Result{
		Config:    e.cfg.Name,
		Signature: m.Signature(),
		Static:    len(m.Code),
		MaxNode:   e.placement.MaxNode,
	}

	// Inject the token bundle at instruction 0, staggered one serial
	// clock apart: HEAD, MEMORY, one REGISTER per local, TAIL
	// (Figure 23).
	delay := 1
	e.serialQ = append(e.serialQ, serialMsg{token{kind: tokHead}, 0, delay})
	delay++
	e.serialQ = append(e.serialQ, serialMsg{token{kind: tokMemory}, 0, delay})
	delay++
	for r := 0; r < m.MaxLocals; r++ {
		e.serialQ = append(e.serialQ, serialMsg{token{kind: tokRegister, reg: r}, 0, delay})
		delay++
	}
	e.serialQ = append(e.serialQ, serialMsg{token{kind: tokTail}, 0, delay})

	for cycle := 0; ; cycle++ {
		if e.preemptCtx != nil && cycle&(preemptEvery-1) == 0 {
			if err := e.preemptCtx.Err(); err != nil {
				return Result{}, err
			}
		}
		if cycle >= e.maxCycles {
			res.MeshCycles = cycle
			res.Fired = e.fired
			res.TimedOut = true
			e.fillCoverage(&res)
			return res, nil
		}

		// Quiesced fabric: the whole chip stalls while the GPP performs
		// its management task; nothing moves, cycles still elapse.
		if e.quiesceFor > 0 && cycle >= e.quiesceAt && cycle < e.quiesceAt+e.quiesceFor {
			continue
		}

		// --- Serial phase: up to SerialPerMesh serial clocks (or drain
		// for the Baseline rule). ---
		budget := e.cfg.SerialPerMesh
		for s := 0; budget == DrainSerial || s < budget; s++ {
			e.releasePendingTails()
			if len(e.serialQ) == 0 {
				break
			}
			e.serialClock()
		}
		e.releasePendingTails()

		// --- Mesh phase: one mesh clock. ---
		executing := e.meshClock()
		e.releasePendingTails()
		if executing >= 1 {
			res.BusyCycles++
		}
		if executing >= 2 {
			res.ParallelCycles++
		}

		if e.finished {
			res.MeshCycles = cycle + 1
			res.Fired = e.fired
			e.fillCoverage(&res)
			return res, nil
		}
		if len(e.serialQ) == 0 && len(e.meshQ) == 0 && !e.anyInFlight() {
			return res, fmt.Errorf("sim: %s stalled on %s at mesh cycle %d",
				m.Signature(), e.cfg.Name, cycle)
		}
	}
}

func (e *Engine) fillCoverage(res *Result) {
	for i := range e.nodes {
		if e.nodes[i].firedOnce {
			res.Distinct++
		}
	}
}

func (e *Engine) anyInFlight() bool {
	for i := range e.nodes {
		switch e.nodes[i].phase {
		case phaseExecuting, phaseService:
			return true
		}
	}
	return false
}

// serialClock advances every in-flight serial message one clock and
// processes arrivals.
func (e *Engine) serialClock() {
	var arrivals []serialMsg
	keep := e.serialQ[:0]
	for _, msg := range e.serialQ {
		msg.delay--
		if msg.delay <= 0 {
			arrivals = append(arrivals, msg)
		} else {
			keep = append(keep, msg)
		}
	}
	e.serialQ = keep
	// Deterministic processing order: by destination, then token kind.
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].to != arrivals[j].to {
			return arrivals[i].to < arrivals[j].to
		}
		return arrivals[i].tok.kind < arrivals[j].tok.kind
	})
	for _, msg := range arrivals {
		e.tokenArrives(msg.tok, msg.to)
	}
}

// tokenArrives applies the Section 6.3 per-group token rules at node i.
func (e *Engine) tokenArrives(tok token, i int) {
	n := &e.nodes[i]
	in := e.code(i)

	// TAIL always parks; the rearmost sweep moves it on.
	if tok.kind == tokTail {
		n.held = append(n.held, tok)
		e.checkFire(i)
		return
	}

	// Control-flow nodes buffer every token until they fire; after a
	// backward-taken decision they keep buffering until TAIL. Tokens
	// trailing in after a forward/fall-through decision are routed
	// directly along the decided path.
	if e.isControl(i) {
		if n.phase == phaseFired && (!in.IsBranch() || !n.decisionTaken || in.Target > i) {
			switch {
			case in.IsBranch() && n.decisionTaken && in.Target > i:
				e.forwardTokenTo(tok, i, in.Target, 0)
			default:
				e.forwardToken(tok, i)
			}
			return
		}
		if tok.kind == tokHead {
			n.headSeen = true
		}
		n.held = append(n.held, tok)
		e.checkFire(i)
		return
	}

	switch tok.kind {
	case tokHead:
		n.headSeen = true
		e.forwardToken(tok, i)
		e.checkFire(i)

	case tokMemory:
		if e.isOrderedStorage(i) && n.phase == phaseReady {
			n.memSeen = true
			n.held = append(n.held, tok)
			e.checkFire(i)
			return
		}
		e.forwardToken(tok, i)

	case tokRegister:
		reg, isLocal := in.LocalIndex()
		if isLocal && reg == tok.reg {
			switch in.Group() {
			case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
				if n.phase == phaseReady {
					n.regSeen = true
					n.held = append(n.held, tok)
					e.checkFire(i)
					return
				}
				// Re-execution after a loop reset re-arms below; a
				// token reaching a fired node passes through.
				e.forwardToken(tok, i)
			case bytecode.GroupLocalWrite:
				// The write kills the incoming value; its own fire
				// emits the replacement token.
				return
			default:
				e.forwardToken(tok, i)
			}
			return
		}
		e.forwardToken(tok, i)

	}
}

// tailIsRearmost reports whether no other live token is behind or at node
// i — the global "TAIL_TOKEN may never pass any other token" invariant.
func (e *Engine) tailIsRearmost(i int) bool {
	for _, msg := range e.serialQ {
		if msg.tok.kind != tokTail && msg.to <= i {
			return false
		}
	}
	for k := 0; k <= i; k++ {
		for _, t := range e.nodes[k].held {
			if t.kind != tokTail {
				return false
			}
		}
	}
	return true
}

// releasePendingTails advances a parked TAIL_TOKEN when its node has fired
// and the token is globally rearmost. Backward-taken jumps instead trigger
// the bundle transport.
func (e *Engine) releasePendingTails() {
	for i := range e.nodes {
		n := &e.nodes[i]
		if n.phase != phaseFired || !e.holdsTail(i) {
			continue
		}
		in := e.code(i)
		if e.isControl(i) && in.IsBranch() && n.decisionTaken && in.Target <= i {
			e.maybeCompleteBackward(i)
			continue
		}
		if e.code(i).IsReturn() {
			continue // consumed by the return
		}
		if !e.tailIsRearmost(i) {
			continue
		}
		e.removeTail(i)
		if e.isControl(i) && in.IsBranch() && n.decisionTaken && in.Target > i {
			e.forwardTokenTo(token{kind: tokTail}, i, in.Target, 0)
		} else {
			e.forwardToken(token{kind: tokTail}, i)
		}
	}
}

// removeTail drops the parked TAIL from node i's buffer.
func (e *Engine) removeTail(i int) {
	n := &e.nodes[i]
	for k, t := range n.held {
		if t.kind == tokTail {
			n.held = append(n.held[:k], n.held[k+1:]...)
			return
		}
	}
}

// forwardToken schedules tok from node i to the next instruction in linear
// order (one serial hop per physical node).
func (e *Engine) forwardToken(tok token, i int) {
	next := i + 1
	if next >= len(e.nodes) {
		return // fell off the method end (only returns should consume TAIL)
	}
	e.serialQ = append(e.serialQ, serialMsg{tok, next, e.serialDist(i, next)})
}

// forwardTokenTo schedules tok with an explicit target (taken branches);
// intervening nodes ignore explicitly addressed messages.
func (e *Engine) forwardTokenTo(tok token, from, to, stagger int) {
	e.serialQ = append(e.serialQ, serialMsg{tok, to, e.serialDist(from, to) + stagger})
}

// meshDeliver processes an operand arrival.
func (e *Engine) meshDeliver(msg meshMsg) {
	n := &e.nodes[msg.to]
	n.popsReceived++
	e.checkFire(msg.to)
}

// checkFire applies the firing rules and begins execution when satisfied.
func (e *Engine) checkFire(i int) {
	n := &e.nodes[i]
	if n.phase != phaseReady {
		return
	}
	in := e.code(i)

	switch in.Group() {
	case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
		if !n.headSeen || !n.regSeen {
			return
		}
	case bytecode.GroupMemRead, bytecode.GroupMemWrite:
		if !n.headSeen || !n.memSeen || n.popsReceived < in.Pop {
			return
		}
	case bytecode.GroupReturn:
		if !n.headSeen || n.popsReceived < in.Pop || !e.holdsTail(i) {
			return
		}
	case bytecode.GroupControl:
		if !n.headSeen || n.popsReceived < in.Pop {
			return
		}
		// Decide direction now; a backward-taken jump additionally
		// needs TAIL before the bundle moves (handled at completion).
		taken := false
		switch {
		case in.Op == bytecode.Goto || in.Op == bytecode.GotoW:
			taken = true
		case in.Target > i:
			taken = e.predictor.Forward(i)
		default:
			taken = e.predictor.Backward(i)
		}
		n.decisionTaken = taken
	default:
		if !n.headSeen || n.popsReceived < in.Pop {
			return
		}
	}

	n.phase = phaseExecuting
	n.execLeft = ExecCycles(in.Group())
	if in.Group() == bytecode.GroupCall {
		// invoke round trip through the GPP
		n.execLeft += GPPServiceCycles
	}
	if in.Group() == bytecode.GroupSpecial {
		n.execLeft += GPPServiceCycles
	}
	if e.foldable(i) {
		// Folded transfers are free: complete immediately without
		// occupying an execution cycle.
		e.completeExecution(i)
	}
}

// holdsTail reports whether node i currently buffers the TAIL_TOKEN.
func (e *Engine) holdsTail(i int) bool {
	for _, t := range e.nodes[i].held {
		if t.kind == tokTail {
			return true
		}
	}
	return false
}

// meshClock advances mesh messages, execution and service phases; returns
// the number of nodes that were in their execution phase this cycle.
func (e *Engine) meshClock() int {
	// Operand deliveries.
	var deliver []meshMsg
	keep := e.meshQ[:0]
	for _, msg := range e.meshQ {
		msg.delay--
		if msg.delay <= 0 {
			deliver = append(deliver, msg)
		} else {
			keep = append(keep, msg)
		}
	}
	e.meshQ = keep
	sort.SliceStable(deliver, func(i, j int) bool { return deliver[i].to < deliver[j].to })
	for _, msg := range deliver {
		e.meshDeliver(msg)
	}

	// Execution and service progress.
	executing := 0
	for i := range e.nodes {
		n := &e.nodes[i]
		switch n.phase {
		case phaseExecuting:
			executing++
			n.execLeft--
			if n.execLeft <= 0 {
				e.completeExecution(i)
			}
		case phaseService:
			n.serviceLeft--
			if n.serviceLeft <= 0 {
				e.completeService(i)
			}
		}
	}
	return executing
}

// completeExecution finishes the execution phase: storage reads transition
// to their service wait; everything else fires.
func (e *Engine) completeExecution(i int) {
	n := &e.nodes[i]
	in := e.code(i)
	if in.Group() == bytecode.GroupMemRead {
		// "the node must remain in the 'waitingForService' state until
		// the memory system returns the result."
		n.phase = phaseService
		n.serviceLeft = MemoryServiceCycles
		// The MEMORY_TOKEN (order number assigned) moves on immediately.
		e.releaseMemoryToken(i)
		return
	}
	if in.Group() == bytecode.GroupMemWrite {
		// Writes post: the service message is sent and processing
		// continues.
		e.releaseMemoryToken(i)
	}
	e.fireNode(i)
}

// completeService fires a storage read once memory responds.
func (e *Engine) completeService(i int) {
	e.fireNode(i)
}

// releaseMemoryToken forwards a held MEMORY_TOKEN down the network.
func (e *Engine) releaseMemoryToken(i int) {
	n := &e.nodes[i]
	for k, t := range n.held {
		if t.kind == tokMemory {
			n.held = append(n.held[:k], n.held[k+1:]...)
			e.forwardToken(t, i)
			return
		}
	}
}

// fireNode marks instruction i fired, emits its operand transfers, and
// releases buffered tokens according to its group.
func (e *Engine) fireNode(i int) {
	n := &e.nodes[i]
	in := e.code(i)
	n.phase = phaseFired
	n.firedOnce = true
	if !e.foldable(i) {
		e.fired++
	}

	// Operand emission to every resolved consumer.
	if in.Push > 0 {
		for _, tg := range e.resolution.Targets[i] {
			e.meshQ = append(e.meshQ, meshMsg{to: tg.Consumer, delay: e.meshDist(i, tg.Consumer)})
		}
	}

	switch in.Group() {
	case bytecode.GroupReturn:
		e.finished = true
		return

	case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
		// Forward the held REGISTER_TOKEN (reads preserve it; the
		// increment re-emits the updated value). A parked TAIL stays
		// for the rearmost sweep.
		e.releaseHeld(i)
		return

	case bytecode.GroupLocalWrite:
		// Emit the replacement REGISTER_TOKEN.
		reg, _ := in.LocalIndex()
		e.forwardToken(token{kind: tokRegister, reg: reg}, i)
		e.releaseHeld(i)
		return

	case bytecode.GroupControl:
		e.completeControl(i)
		return

	default:
		e.releaseHeld(i)
	}
}

// forwardTokenStagger forwards with incrementing extra delay so released
// tokens depart one serial clock apart.
func (e *Engine) forwardTokenStagger(t token, i int, stagger *int) {
	next := i + 1
	if next >= len(e.nodes) {
		return
	}
	e.serialQ = append(e.serialQ, serialMsg{t, next, e.serialDist(i, next) + *stagger})
	*stagger++
}

// releaseHeld forwards all buffered tokens in kind order; a parked TAIL
// stays behind for the rearmost sweep.
func (e *Engine) releaseHeld(i int) {
	n := &e.nodes[i]
	sort.SliceStable(n.held, func(a, b int) bool { return n.held[a].kind < n.held[b].kind })
	stagger := 0
	var tail []token
	for _, t := range n.held {
		if t.kind == tokTail {
			tail = append(tail, t)
			continue
		}
		e.forwardTokenStagger(t, i, &stagger)
	}
	n.held = tail
}

// completeControl routes the buffered bundle after a control node fires.
func (e *Engine) completeControl(i int) {
	n := &e.nodes[i]
	in := e.code(i)
	target := in.Target

	switch {
	case !in.IsBranch() || !n.decisionTaken:
		// Calls and not-taken jumps fall through.
		e.releaseHeld(i)
	case target > i:
		// Forward taken: explicit addressing to the target; a parked
		// TAIL follows via the sweep.
		sort.SliceStable(n.held, func(a, b int) bool { return n.held[a].kind < n.held[b].kind })
		stagger := 0
		var tail []token
		for _, t := range n.held {
			if t.kind == tokTail {
				tail = append(tail, t)
				continue
			}
			e.forwardTokenTo(t, i, target, stagger)
			stagger++
		}
		n.held = tail
	default:
		// Backward taken: keep buffering until TAIL arrives, then move
		// the whole bundle up the reverse network.
		e.maybeCompleteBackward(i)
	}
}

// maybeCompleteBackward transports the bundle up the reverse network once a
// fired backward-taken jump holds the TAIL_TOKEN, resetting every
// instruction in the loop span to the ready state (Section 6.3: "each
// instruction from the same thread/class/method must also reset").
func (e *Engine) maybeCompleteBackward(i int) {
	n := &e.nodes[i]
	in := e.code(i)
	if n.phase != phaseFired || !n.decisionTaken {
		return
	}
	if !in.IsBranch() || in.Target > i {
		return
	}
	if !e.holdsTail(i) {
		return
	}
	// The transport may only move a complete bundle: nothing still in
	// flight toward the jump and nothing buffered behind it.
	for _, msg := range e.serialQ {
		if msg.to <= i {
			return
		}
	}
	for k := 0; k < i; k++ {
		if len(e.nodes[k].held) > 0 {
			return
		}
	}
	target := in.Target
	bundle := n.held
	n.held = nil

	// Reset the loop span (including this jump, which will re-execute).
	for k := target; k <= i; k++ {
		e.nodes[k] = nodeState{firedOnce: e.nodes[k].firedOnce, held: e.nodes[k].held}
	}

	// Re-inject the bundle at the loop head, one serial clock apart, after
	// the reverse transit.
	dist := e.serialDist(i, target)
	sort.SliceStable(bundle, func(a, b int) bool { return bundle[a].kind < bundle[b].kind })
	stagger := 0
	for _, t := range bundle {
		e.serialQ = append(e.serialQ, serialMsg{t, target, dist + stagger})
		stagger++
	}
}

// DebugState renders node phases and pending queues for stall diagnosis.
func (e *Engine) DebugState() string {
	out := fmt.Sprintf("serialQ=%d meshQ=%d\n", len(e.serialQ), len(e.meshQ))
	for i := range e.nodes {
		n := &e.nodes[i]
		if n.phase == phaseReady && len(n.held) == 0 && !n.headSeen && n.popsReceived == 0 {
			continue
		}
		out += fmt.Sprintf("node %3d %-24s phase=%d head=%v pops=%d mem=%v reg=%v held=%d dec=%v\n",
			i, e.code(i).String(), n.phase, n.headSeen, n.popsReceived, n.memSeen, n.regSeen, len(n.held), n.decisionTaken)
	}
	return out
}
