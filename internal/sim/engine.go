package sim

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
)

// DefaultMaxMeshCycles bounds one method execution; methods that exceed it
// are reported as timed out and filtered from results, as the dissertation
// filtered endless-loop cases (Section 7.3, Simulation Structure).
const DefaultMaxMeshCycles = 2_000_000

// preemptEvery is how often (in mesh cycles) a preemptible engine polls its
// context. A power of two so the check is a mask, not a division; at ~4096
// cycles the poll adds one atomic load per few hundred thousand token moves,
// while a cancelled 2M-cycle method aborts within a fraction of a percent of
// its full budget instead of running to completion. The event-driven loop
// honors the same contract — it polls whenever a cycle jump crosses a
// preemptEvery boundary — so cancellation latency is unchanged.
const preemptEvery = 4096

// tokenKind identifies a member of the token bundle (Figure 23).
type tokenKind uint8

const (
	tokHead tokenKind = iota
	tokMemory
	tokRegister
	tokTail
)

func (k tokenKind) String() string {
	switch k {
	case tokHead:
		return "HEAD"
	case tokMemory:
		return "MEMORY"
	case tokRegister:
		return "REGISTER"
	default:
		return "TAIL"
	}
}

// token is one serial-bundle element in flight or held at a node.
type token struct {
	kind tokenKind
	reg  int // register number for tokRegister
}

// serialMsg is a token travelling the ordered network.
type serialMsg struct {
	tok   token
	to    int // destination instruction index
	delay int // serial clocks remaining (reference loop only)
}

// meshMsg is a producer→consumer operand transfer.
type meshMsg struct {
	to    int // consumer instruction index
	delay int // mesh cycles remaining (reference loop only)
}

// completion is a scheduled execution/service phase end for the event loop;
// gen invalidates completions of nodes reset by a backward bundle
// transport before their phase finished.
type completion struct {
	node int
	gen  uint32
}

// nodeMeta caches the per-instruction properties the token rules consult
// on every arrival — group, branch target, local register, stack effects,
// classification flags — decoded once at engine construction so the hot
// loops never re-copy a full bytecode.Instruction or re-run its map
// lookups.
type nodeMeta struct {
	target   int32 // branch target (bytecode.NoTarget when none)
	localReg int32 // local register accessed, -1 when not a local op
	pop      int32
	push     int32
	group    bytecode.Group
	flags    uint8
}

const (
	metaControl        uint8 = 1 << iota // buffers the bundle until it fires
	metaOrderedStorage                   // participates in MEMORY_TOKEN ordering
	metaBranch                           // may transfer control to target
	metaReturn                           // ends the method
	metaAlwaysTaken                      // unconditional goto
	metaFoldKind                         // group the folding enhancement eliminates
)

// metaCache memoizes decodeMeta per method: the table is an immutable pure
// function of the code, engines only read it, and one deployment backs
// many runs (two branch policies per MethodRun, repeated sweeps through
// the deployment cache). Crudely bounded: past metaCacheMax entries the
// cache resets rather than tracking recency — rebuilds are cheap.
var (
	metaCache    sync.Map // *classfile.Method -> []nodeMeta
	metaCacheLen atomic.Int64
)

const metaCacheMax = 8192

func metaFor(m *classfile.Method) []nodeMeta {
	if v, ok := metaCache.Load(m); ok {
		return v.([]nodeMeta)
	}
	meta := decodeMeta(m.Code)
	if metaCacheLen.Load() >= metaCacheMax {
		metaCache.Clear()
		metaCacheLen.Store(0)
	}
	if _, loaded := metaCache.LoadOrStore(m, meta); !loaded {
		metaCacheLen.Add(1)
	}
	return meta
}

func decodeMeta(code []bytecode.Instruction) []nodeMeta {
	meta := make([]nodeMeta, len(code))
	for i := range code {
		in := &code[i]
		m := nodeMeta{
			target:   int32(in.Target),
			localReg: -1,
			pop:      int32(in.Pop),
			push:     int32(in.Push),
			group:    in.Group(),
		}
		if reg, ok := in.LocalIndex(); ok {
			m.localReg = int32(reg)
		}
		switch m.group {
		case bytecode.GroupControl, bytecode.GroupReturn:
			m.flags |= metaControl
		case bytecode.GroupMemRead, bytecode.GroupMemWrite:
			m.flags |= metaOrderedStorage
		case bytecode.GroupLocalRead, bytecode.GroupMove:
			m.flags |= metaFoldKind
		}
		if in.IsBranch() {
			m.flags |= metaBranch
		}
		if in.IsReturn() {
			m.flags |= metaReturn
		}
		if in.Op == bytecode.Goto || in.Op == bytecode.GotoW {
			m.flags |= metaAlwaysTaken
		}
		meta[i] = m
	}
	return meta
}

// nodePhase tracks an Instruction Data Unit's execution lifecycle.
type nodePhase uint8

const (
	phaseReady nodePhase = iota
	phaseExecuting
	phaseService // storage read or GPP service outstanding
	phaseFired
)

// nodeState is the per-instruction Instruction Data Unit state (Figure 13).
type nodeState struct {
	phase        nodePhase
	headSeen     bool
	popsReceived int
	memSeen      bool
	regSeen      bool // matching REGISTER_TOKEN held (local read/inc)
	held         []token
	execLeft     int
	serviceLeft  int
	// gen counts resets of this node (backward bundle transports); the
	// event loop tags scheduled completions with it so a reset mid-phase
	// orphans the stale completion instead of firing a reset node.
	gen uint32
	// decision caches the control-flow outcome chosen at fire time.
	decisionTaken bool
	firedOnce     bool // coverage accounting across loop iterations
}

// Result reports one simulated method execution.
type Result struct {
	Config     string
	Signature  string
	Policy     BranchPolicy
	Fired      int // dynamic instructions executed
	Distinct   int // distinct static sites fired (coverage numerator)
	Static     int
	MeshCycles int
	// ParallelCycles counts mesh cycles with >= 2 nodes in their
	// execution phase (service time excluded, as in Table 26).
	ParallelCycles int
	// BusyCycles counts mesh cycles with >= 1 node executing.
	BusyCycles int
	MaxNode    int
	TimedOut   bool
}

// IPC is instructions per mesh cycle.
func (r Result) IPC() float64 {
	if r.MeshCycles == 0 {
		return 0
	}
	return float64(r.Fired) / float64(r.MeshCycles)
}

// Coverage is the fraction of static instructions that fired (Table 18).
func (r Result) Coverage() float64 {
	if r.Static == 0 {
		return 0
	}
	return float64(r.Distinct) / float64(r.Static)
}

// Parallelism is the fraction of mesh cycles with two or more instructions
// executing (Table 26).
func (r Result) Parallelism() float64 {
	if r.MeshCycles == 0 {
		return 0
	}
	return float64(r.ParallelCycles) / float64(r.MeshCycles)
}

// Engine simulates one method execution on one configuration.
//
// Two interchangeable loops drive the shared token-rule semantics below:
// Run uses the event-driven core (engine_event.go) — arrival-bucketed
// queues, an incremental rearmost-TAIL watermark, counter-based phase
// tracking and cycle skipping — while RunReference replays the original
// clock-by-clock loop. Both produce byte-identical Results; the
// differential tests assert it and the reference loop is kept as the
// oracle. An Engine is single-use: create a fresh one per Run.
type Engine struct {
	cfg        Config
	placement  *fabric.Placement
	resolution *fabric.Resolution
	predictor  *Predictor

	nodes   []nodeState
	meta    []nodeMeta
	serialQ []serialMsg // reference loop in-flight serial messages
	meshQ   []meshMsg   // reference loop in-flight operand transfers

	maxCycles int
	fired     int
	finished  bool

	// Quiesce models the QUIESE_TOKEN / RESETADDRESS_TOKEN flow
	// (Section 6.2 "Management and Cleanup", Section 6.4): at
	// quiesceAt the GPP halts the fabric for quiesceFor mesh cycles
	// (e.g. a garbage collection re-deriving heap pointers), after which
	// execution resumes with all in-fabric state intact.
	quiesceAt  int
	quiesceFor int

	// preemptCtx, when non-nil, is polled every preemptEvery mesh cycles
	// so a long-running execution aborts mid-run on cancellation instead
	// of only between jobs.
	preemptCtx context.Context

	// foldTransfers enables the Section 6.4 folding enhancement upper
	// bound: pure data-transfer nodes (register reads and stack moves)
	// "declare themselves void" — they fire in zero execution cycles and
	// are not counted as executed instructions, modelling their
	// elimination after the linkage process.
	foldTransfers bool

	// ---- event-driven core state (engine_event.go) ----

	// event selects the event-driven representations in the shared
	// semantic code; set by Run, left false by RunReference.
	event bool
	// serialNow / meshNow are the absolute serial clock and active mesh
	// cycle counts; every queued arrival and completion is keyed on them.
	// meshTick counts completed mesh decrement passes: it runs one ahead
	// of meshNow during a cycle's mesh phase, because the reference loop
	// decrements a message pushed in the serial phase on that same
	// cycle's mesh clock (arrival c+d-1) but a message pushed during the
	// mesh clock only from the next cycle (arrival c+d).
	serialNow int
	meshNow   int
	meshTick  int
	serialEv  timeQ[serialMsg]
	meshEv    timeQ[meshMsg]
	doneEv    timeQ[completion]
	// The rearmost-TAIL watermark. There is exactly one TAIL in the
	// machine: tailHeldAt is the node buffering it (-1 while in flight)
	// and tailPos its position (destination while in flight, holder
	// while parked). liveAt[p] counts every other live token at
	// position p — in-flight serial messages by destination plus held
	// tokens by node — and liveBehind is the running sum of
	// liveAt[0..tailPos], updated in O(1) per token move and O(span)
	// when the TAIL itself moves. The reference loop's
	// O(serialQ + nodes·held) rearmost scan becomes liveBehind==0.
	tailHeldAt int
	tailPos    int
	liveAt     []int32
	liveBehind int
	// executingCount/serviceCount replace the reference loop's full-node
	// sweeps for busy accounting and in-flight detection.
	executingCount int
	serviceCount   int
	// Precomputed per-placement distances: nextD[i] is the serial hop to
	// i+1, branchD[i] the serial distance to i's branch target, and
	// meshD[meshOff[i]+k] the mesh distance to Targets[i][k].Consumer —
	// the inner loop never calls through fabric.Fabric per message.
	nextD   []int32
	branchD []int32
	meshD   []int32
	meshOff []int32

	stats EngineStats
}

// NewEngine prepares an execution. The placement must come from the same
// fabric as cfg.
func NewEngine(cfg Config, res *fabric.Resolution, policy BranchPolicy) *Engine {
	return &Engine{
		cfg:        cfg,
		placement:  res.Placement,
		resolution: res,
		predictor:  NewPredictor(policy),
		nodes:      make([]nodeState, len(res.Placement.Method.Code)),
		meta:       metaFor(res.Placement.Method),
		maxCycles:  DefaultMaxMeshCycles,
		tailHeldAt: -1,
	}
}

// SetMaxCycles overrides the timeout bound.
func (e *Engine) SetMaxCycles(n int) { e.maxCycles = n }

// ScheduleQuiesce arranges a fabric-wide stall of the given duration
// starting at the given mesh cycle — the QUIESE_TOKEN mechanism a garbage
// collection would use before RESETADDRESS_TOKEN re-derives memory
// pointers. Execution state is preserved across the stall.
func (e *Engine) ScheduleQuiesce(atCycle, duration int) {
	e.quiesceAt = atCycle
	e.quiesceFor = duration
}

// EnableFolding turns on the Section 6.4 folding-enhancement model.
func (e *Engine) EnableFolding() { e.foldTransfers = true }

// SetPreempt arranges for Run to poll ctx at least every preemptEvery mesh
// cycles and return ctx.Err() mid-execution once it is cancelled. A nil ctx
// (the default) disables the check entirely.
func (e *Engine) SetPreempt(ctx context.Context) { e.preemptCtx = ctx }

// foldable reports whether instruction i is a pure data transfer the
// folding enhancement eliminates.
func (e *Engine) foldable(i int) bool {
	return e.foldTransfers && e.meta[i].flags&metaFoldKind != 0
}

func (e *Engine) code(i int) bytecode.Instruction {
	return e.placement.Method.Code[i]
}

func (e *Engine) serialDist(from, to int) int {
	return e.cfg.Fabric.SerialDistance(e.placement.NodeOf[from], e.placement.NodeOf[to])
}

func (e *Engine) meshDist(from, to int) int {
	return e.cfg.Fabric.MeshDistance(e.placement.NodeOf[from], e.placement.NodeOf[to])
}

// hopDelay is the serial delay from i to its linear successor.
func (e *Engine) hopDelay(i int) int {
	if e.event {
		return int(e.nextD[i])
	}
	return e.serialDist(i, i+1)
}

// targetDelay is the serial delay from a branch at `from` to its Target.
func (e *Engine) targetDelay(from, to int) int {
	if e.event {
		return int(e.branchD[from])
	}
	return e.serialDist(from, to)
}

// isControl reports whether instruction i buffers the token bundle until it
// fires (Section 6.3, Control Flow Operations). Calls pass tokens through
// (only TAIL is buffered), so they are not control for buffering purposes.
func (e *Engine) isControl(i int) bool {
	return e.meta[i].flags&metaControl != 0
}

// isOrderedStorage reports whether instruction i participates in
// MEMORY_TOKEN ordering: array and field accesses, but not constant-pool
// loads ("unordered constant access to the Method Area").
func (e *Engine) isOrderedStorage(i int) bool {
	return e.meta[i].flags&metaOrderedStorage != 0
}

// ---- queue and bookkeeping primitives shared by both loops ----

// pushSerial schedules tok for node `to`, `delay` serial clocks out.
func (e *Engine) pushSerial(t token, to, delay int) {
	if !e.event {
		e.serialQ = append(e.serialQ, serialMsg{t, to, delay})
		return
	}
	e.serialEv.push(e.serialNow+delay, serialMsg{t, to, delay})
	if t.kind == tokTail {
		e.moveTail(to)
	} else {
		e.liveAt[to]++
		if to <= e.tailPos {
			e.liveBehind++
		}
	}
}

// moveTail relocates the watermark to position p: forward moves fold the
// crossed span into liveBehind; a backward transport re-sums the prefix.
func (e *Engine) moveTail(p int) {
	if p >= e.tailPos {
		for k := e.tailPos + 1; k <= p; k++ {
			e.liveBehind += int(e.liveAt[k])
		}
	} else {
		s := 0
		for k := 0; k <= p; k++ {
			s += int(e.liveAt[k])
		}
		e.liveBehind = s
	}
	e.tailPos = p
}

// pushMesh schedules an operand delivery `delay` mesh cycles out.
func (e *Engine) pushMesh(to, delay int) {
	if !e.event {
		e.meshQ = append(e.meshQ, meshMsg{to: to, delay: delay})
		return
	}
	e.meshEv.push(e.meshTick+delay-1, meshMsg{to: to, delay: delay})
}

// holdToken buffers tok at node i.
func (e *Engine) holdToken(i int, t token) {
	e.nodes[i].held = append(e.nodes[i].held, t)
	if e.event {
		if t.kind == tokTail {
			e.tailHeldAt = i // tailPos is already i (its delivery target)
		} else {
			e.liveAt[i]++
			if i <= e.tailPos {
				e.liveBehind++
			}
		}
	}
}

// noteUnheld records that tok left node i's buffer.
func (e *Engine) noteUnheld(i int, t token) {
	if !e.event {
		return
	}
	if t.kind == tokTail {
		e.tailHeldAt = -1 // position unchanged until the re-push
	} else {
		e.liveAt[i]--
		if i <= e.tailPos {
			e.liveBehind--
		}
	}
}

// setPhase transitions node i, keeping the event loop's phase counters.
func (e *Engine) setPhase(i int, p nodePhase) {
	n := &e.nodes[i]
	if n.phase == p {
		return
	}
	if e.event {
		switch n.phase {
		case phaseExecuting:
			e.executingCount--
		case phaseService:
			e.serviceCount--
		}
		switch p {
		case phaseExecuting:
			e.executingCount++
		case phaseService:
			e.serviceCount++
		}
	}
	n.phase = p
}

// scheduleDone registers node i's current phase to complete at the given
// absolute mesh cycle (event loop only).
func (e *Engine) scheduleDone(i, at int) {
	e.doneEv.push(at, completion{node: i, gen: e.nodes[i].gen})
}

// pendingSerial / pendingMesh are the in-flight message counts under
// whichever representation the active loop uses.
func (e *Engine) pendingSerial() int {
	if e.event {
		return e.serialEv.n
	}
	return len(e.serialQ)
}

func (e *Engine) pendingMesh() int {
	if e.event {
		return e.meshEv.n
	}
	return len(e.meshQ)
}

// injectBundle enqueues the initial token bundle at instruction 0,
// staggered one serial clock apart: HEAD, MEMORY, one REGISTER per local,
// TAIL (Figure 23).
func (e *Engine) injectBundle() {
	m := e.placement.Method
	delay := 1
	e.pushSerial(token{kind: tokHead}, 0, delay)
	delay++
	e.pushSerial(token{kind: tokMemory}, 0, delay)
	delay++
	for r := 0; r < m.MaxLocals; r++ {
		e.pushSerial(token{kind: tokRegister, reg: r}, 0, delay)
		delay++
	}
	e.pushSerial(token{kind: tokTail}, 0, delay)
}

// Run simulates the method to completion (a Return fires) or timeout,
// using the event-driven core. Results are byte-identical to
// RunReference's (asserted by the differential tests), so EngineVersion
// covers both loops.
func (e *Engine) Run() (Result, error) { return e.runEvent() }

// RunReference simulates with the original clock-by-clock loop: every
// serial clock decrements every in-flight message, every mesh cycle sweeps
// every node. It is kept as the equivalence oracle for the event-driven
// core and for microbenchmark comparison; production paths use Run.
func (e *Engine) RunReference() (Result, error) {
	m := e.placement.Method
	res := Result{
		Config:    e.cfg.Name,
		Signature: m.Signature(),
		Static:    len(m.Code),
		MaxNode:   e.placement.MaxNode,
	}

	e.injectBundle()

	for cycle := 0; ; cycle++ {
		if e.preemptCtx != nil && cycle&(preemptEvery-1) == 0 {
			if err := e.preemptCtx.Err(); err != nil {
				return Result{}, err
			}
		}
		if cycle >= e.maxCycles {
			res.MeshCycles = cycle
			res.Fired = e.fired
			res.TimedOut = true
			e.fillCoverage(&res)
			return res, nil
		}

		// Quiesced fabric: the whole chip stalls while the GPP performs
		// its management task; nothing moves, cycles still elapse.
		if e.quiesceFor > 0 && cycle >= e.quiesceAt && cycle < e.quiesceAt+e.quiesceFor {
			continue
		}

		// --- Serial phase: up to SerialPerMesh serial clocks (or drain
		// for the Baseline rule). ---
		budget := e.cfg.SerialPerMesh
		for s := 0; budget == DrainSerial || s < budget; s++ {
			e.releasePendingTails()
			if len(e.serialQ) == 0 {
				break
			}
			e.serialClock()
		}
		e.releasePendingTails()

		// --- Mesh phase: one mesh clock. ---
		executing := e.meshClock()
		e.releasePendingTails()
		if executing >= 1 {
			res.BusyCycles++
		}
		if executing >= 2 {
			res.ParallelCycles++
		}

		if e.finished {
			res.MeshCycles = cycle + 1
			res.Fired = e.fired
			e.fillCoverage(&res)
			return res, nil
		}
		if len(e.serialQ) == 0 && len(e.meshQ) == 0 && !e.anyInFlight() {
			return res, fmt.Errorf("sim: %s stalled on %s at mesh cycle %d",
				m.Signature(), e.cfg.Name, cycle)
		}
	}
}

func (e *Engine) fillCoverage(res *Result) {
	for i := range e.nodes {
		if e.nodes[i].firedOnce {
			res.Distinct++
		}
	}
}

func (e *Engine) anyInFlight() bool {
	if e.event {
		return e.executingCount > 0 || e.serviceCount > 0
	}
	for i := range e.nodes {
		switch e.nodes[i].phase {
		case phaseExecuting, phaseService:
			return true
		}
	}
	return false
}

// serialClock advances every in-flight serial message one clock and
// processes arrivals (reference loop).
func (e *Engine) serialClock() {
	var arrivals []serialMsg
	keep := e.serialQ[:0]
	for _, msg := range e.serialQ {
		msg.delay--
		if msg.delay <= 0 {
			arrivals = append(arrivals, msg)
		} else {
			keep = append(keep, msg)
		}
	}
	e.serialQ = keep
	// Deterministic processing order: by destination, then token kind.
	sortSerialArrivals(arrivals)
	for _, msg := range arrivals {
		e.tokenArrives(msg.tok, msg.to)
	}
}

// tokenArrives applies the Section 6.3 per-group token rules at node i.
func (e *Engine) tokenArrives(tok token, i int) {
	n := &e.nodes[i]
	mt := &e.meta[i]

	// TAIL always parks; the rearmost sweep moves it on.
	if tok.kind == tokTail {
		e.holdToken(i, tok)
		e.checkFire(i)
		return
	}

	// Control-flow nodes buffer every token until they fire; after a
	// backward-taken decision they keep buffering until TAIL. Tokens
	// trailing in after a forward/fall-through decision are routed
	// directly along the decided path.
	if mt.flags&metaControl != 0 {
		isBranch, target := mt.flags&metaBranch != 0, int(mt.target)
		if n.phase == phaseFired && (!isBranch || !n.decisionTaken || target > i) {
			switch {
			case isBranch && n.decisionTaken && target > i:
				e.forwardTokenTo(tok, i, target, 0)
			default:
				e.forwardToken(tok, i)
			}
			return
		}
		if tok.kind == tokHead {
			n.headSeen = true
		}
		e.holdToken(i, tok)
		e.checkFire(i)
		return
	}

	switch tok.kind {
	case tokHead:
		n.headSeen = true
		e.forwardToken(tok, i)
		e.checkFire(i)

	case tokMemory:
		if mt.flags&metaOrderedStorage != 0 && n.phase == phaseReady {
			n.memSeen = true
			e.holdToken(i, tok)
			e.checkFire(i)
			return
		}
		e.forwardToken(tok, i)

	case tokRegister:
		if int(mt.localReg) == tok.reg {
			switch mt.group {
			case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
				if n.phase == phaseReady {
					n.regSeen = true
					e.holdToken(i, tok)
					e.checkFire(i)
					return
				}
				// Re-execution after a loop reset re-arms below; a
				// token reaching a fired node passes through.
				e.forwardToken(tok, i)
			case bytecode.GroupLocalWrite:
				// The write kills the incoming value; its own fire
				// emits the replacement token.
				return
			default:
				e.forwardToken(tok, i)
			}
			return
		}
		e.forwardToken(tok, i)

	}
}

// tailIsRearmost reports whether no other live token is behind or at node
// i — the global "TAIL_TOKEN may never pass any other token" invariant.
// The event loop answers from the incrementally maintained watermark
// indices; the reference loop scans the queues.
func (e *Engine) tailIsRearmost(i int) bool {
	if e.event {
		// Only ever asked about the parked TAIL itself, so i == tailPos
		// and liveBehind is exactly the count of non-TAIL tokens held at
		// or in flight to nodes <= i.
		return e.liveBehind == 0
	}
	for _, msg := range e.serialQ {
		if msg.tok.kind != tokTail && msg.to <= i {
			return false
		}
	}
	for k := 0; k <= i; k++ {
		for _, t := range e.nodes[k].held {
			if t.kind != tokTail {
				return false
			}
		}
	}
	return true
}

// releasePendingTails advances a parked TAIL_TOKEN when its node has fired
// and the token is globally rearmost. Backward-taken jumps instead trigger
// the bundle transport. There is exactly one TAIL in the machine, so the
// event loop checks just its tracked holder; the reference loop sweeps
// every node.
func (e *Engine) releasePendingTails() {
	if e.event {
		if i := e.tailHeldAt; i >= 0 {
			e.tryReleaseTail(i)
		}
		return
	}
	for i := range e.nodes {
		e.tryReleaseTail(i)
	}
}

// tryReleaseTail applies the tail-release rules at node i.
func (e *Engine) tryReleaseTail(i int) {
	n := &e.nodes[i]
	if n.phase != phaseFired || !e.holdsTail(i) {
		return
	}
	mt := &e.meta[i]
	controlBranch := mt.flags&metaControl != 0 && mt.flags&metaBranch != 0
	if controlBranch && n.decisionTaken && int(mt.target) <= i {
		e.maybeCompleteBackward(i)
		return
	}
	if mt.flags&metaReturn != 0 {
		return // consumed by the return
	}
	if !e.tailIsRearmost(i) {
		return
	}
	e.removeTail(i)
	if controlBranch && n.decisionTaken && int(mt.target) > i {
		e.forwardTokenTo(token{kind: tokTail}, i, int(mt.target), 0)
	} else {
		e.forwardToken(token{kind: tokTail}, i)
	}
}

// removeTail drops the parked TAIL from node i's buffer.
func (e *Engine) removeTail(i int) {
	n := &e.nodes[i]
	for k, t := range n.held {
		if t.kind == tokTail {
			n.held = append(n.held[:k], n.held[k+1:]...)
			e.noteUnheld(i, t)
			return
		}
	}
}

// forwardToken schedules tok from node i to the next instruction in linear
// order (one serial hop per physical node).
func (e *Engine) forwardToken(tok token, i int) {
	next := i + 1
	if next >= len(e.nodes) {
		return // fell off the method end (only returns should consume TAIL)
	}
	e.pushSerial(tok, next, e.hopDelay(i))
}

// forwardTokenTo schedules tok with an explicit target (taken branches);
// intervening nodes ignore explicitly addressed messages.
func (e *Engine) forwardTokenTo(tok token, from, to, stagger int) {
	e.pushSerial(tok, to, e.targetDelay(from, to)+stagger)
}

// meshDeliver processes an operand arrival.
func (e *Engine) meshDeliver(msg meshMsg) {
	n := &e.nodes[msg.to]
	n.popsReceived++
	e.checkFire(msg.to)
}

// checkFire applies the firing rules and begins execution when satisfied.
func (e *Engine) checkFire(i int) {
	n := &e.nodes[i]
	if n.phase != phaseReady {
		return
	}
	mt := &e.meta[i]

	switch mt.group {
	case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
		if !n.headSeen || !n.regSeen {
			return
		}
	case bytecode.GroupMemRead, bytecode.GroupMemWrite:
		if !n.headSeen || !n.memSeen || n.popsReceived < int(mt.pop) {
			return
		}
	case bytecode.GroupReturn:
		if !n.headSeen || n.popsReceived < int(mt.pop) || !e.holdsTail(i) {
			return
		}
	case bytecode.GroupControl:
		if !n.headSeen || n.popsReceived < int(mt.pop) {
			return
		}
		// Decide direction now; a backward-taken jump additionally
		// needs TAIL before the bundle moves (handled at completion).
		taken := false
		switch {
		case mt.flags&metaAlwaysTaken != 0:
			taken = true
		case int(mt.target) > i:
			taken = e.predictor.Forward(i)
		default:
			taken = e.predictor.Backward(i)
		}
		n.decisionTaken = taken
	default:
		if !n.headSeen || n.popsReceived < int(mt.pop) {
			return
		}
	}

	e.setPhase(i, phaseExecuting)
	n.execLeft = ExecCycles(mt.group)
	if mt.group == bytecode.GroupCall {
		// invoke round trip through the GPP
		n.execLeft += GPPServiceCycles
	}
	if mt.group == bytecode.GroupSpecial {
		n.execLeft += GPPServiceCycles
	}
	if e.foldable(i) {
		// Folded transfers are free: complete immediately without
		// occupying an execution cycle.
		e.completeExecution(i)
	} else if e.event {
		// A node armed during cycle c is first decremented during c's
		// mesh clock, so an execLeft of L completes at cycle c+L-1.
		e.scheduleDone(i, e.meshNow+n.execLeft-1)
	}
}

// holdsTail reports whether node i currently buffers the TAIL_TOKEN.
func (e *Engine) holdsTail(i int) bool {
	for _, t := range e.nodes[i].held {
		if t.kind == tokTail {
			return true
		}
	}
	return false
}

// meshClock advances mesh messages, execution and service phases; returns
// the number of nodes that were in their execution phase this cycle
// (reference loop).
func (e *Engine) meshClock() int {
	// Operand deliveries.
	var deliver []meshMsg
	keep := e.meshQ[:0]
	for _, msg := range e.meshQ {
		msg.delay--
		if msg.delay <= 0 {
			deliver = append(deliver, msg)
		} else {
			keep = append(keep, msg)
		}
	}
	e.meshQ = keep
	sortMeshArrivals(deliver)
	for _, msg := range deliver {
		e.meshDeliver(msg)
	}

	// Execution and service progress.
	executing := 0
	for i := range e.nodes {
		n := &e.nodes[i]
		switch n.phase {
		case phaseExecuting:
			executing++
			n.execLeft--
			if n.execLeft <= 0 {
				e.completeExecution(i)
			}
		case phaseService:
			n.serviceLeft--
			if n.serviceLeft <= 0 {
				e.completeService(i)
			}
		}
	}
	return executing
}

// completeExecution finishes the execution phase: storage reads transition
// to their service wait; everything else fires.
func (e *Engine) completeExecution(i int) {
	n := &e.nodes[i]
	group := e.meta[i].group
	if group == bytecode.GroupMemRead {
		// "the node must remain in the 'waitingForService' state until
		// the memory system returns the result."
		e.setPhase(i, phaseService)
		n.serviceLeft = MemoryServiceCycles
		if e.event {
			// First decremented on the next mesh clock: completes
			// serviceLeft cycles after the transition.
			e.scheduleDone(i, e.meshNow+n.serviceLeft)
		}
		// The MEMORY_TOKEN (order number assigned) moves on immediately.
		e.releaseMemoryToken(i)
		return
	}
	if group == bytecode.GroupMemWrite {
		// Writes post: the service message is sent and processing
		// continues.
		e.releaseMemoryToken(i)
	}
	e.fireNode(i)
}

// completeService fires a storage read once memory responds.
func (e *Engine) completeService(i int) {
	e.fireNode(i)
}

// releaseMemoryToken forwards a held MEMORY_TOKEN down the network.
func (e *Engine) releaseMemoryToken(i int) {
	n := &e.nodes[i]
	for k, t := range n.held {
		if t.kind == tokMemory {
			n.held = append(n.held[:k], n.held[k+1:]...)
			e.noteUnheld(i, t)
			e.forwardToken(t, i)
			return
		}
	}
}

// fireNode marks instruction i fired, emits its operand transfers, and
// releases buffered tokens according to its group.
func (e *Engine) fireNode(i int) {
	n := &e.nodes[i]
	mt := &e.meta[i]
	e.setPhase(i, phaseFired)
	n.firedOnce = true
	if !e.foldable(i) {
		e.fired++
	}

	// Operand emission to every resolved consumer.
	if mt.push > 0 {
		if e.event {
			off := int(e.meshOff[i])
			for k, tg := range e.resolution.Targets[i] {
				e.pushMesh(tg.Consumer, int(e.meshD[off+k]))
			}
		} else {
			for _, tg := range e.resolution.Targets[i] {
				e.pushMesh(tg.Consumer, e.meshDist(i, tg.Consumer))
			}
		}
	}

	switch mt.group {
	case bytecode.GroupReturn:
		e.finished = true
		return

	case bytecode.GroupLocalRead, bytecode.GroupLocalInc:
		// Forward the held REGISTER_TOKEN (reads preserve it; the
		// increment re-emits the updated value). A parked TAIL stays
		// for the rearmost sweep.
		e.releaseHeld(i)
		return

	case bytecode.GroupLocalWrite:
		// Emit the replacement REGISTER_TOKEN.
		e.forwardToken(token{kind: tokRegister, reg: int(mt.localReg)}, i)
		e.releaseHeld(i)
		return

	case bytecode.GroupControl:
		e.completeControl(i)
		return

	default:
		e.releaseHeld(i)
	}
}

// forwardTokenStagger forwards with incrementing extra delay so released
// tokens depart one serial clock apart.
func (e *Engine) forwardTokenStagger(t token, i int, stagger *int) {
	next := i + 1
	if next >= len(e.nodes) {
		return
	}
	e.pushSerial(t, next, e.hopDelay(i)+*stagger)
	*stagger++
}

// releaseHeld forwards all buffered tokens in kind order; a parked TAIL
// stays behind for the rearmost sweep.
func (e *Engine) releaseHeld(i int) {
	n := &e.nodes[i]
	sortTokensByKind(n.held)
	stagger := 0
	var tail []token
	for _, t := range n.held {
		if t.kind == tokTail {
			tail = append(tail, t)
			continue
		}
		e.noteUnheld(i, t)
		e.forwardTokenStagger(t, i, &stagger)
	}
	n.held = tail
}

// completeControl routes the buffered bundle after a control node fires.
func (e *Engine) completeControl(i int) {
	n := &e.nodes[i]
	mt := &e.meta[i]
	target := int(mt.target)

	switch {
	case mt.flags&metaBranch == 0 || !n.decisionTaken:
		// Calls and not-taken jumps fall through.
		e.releaseHeld(i)
	case target > i:
		// Forward taken: explicit addressing to the target; a parked
		// TAIL follows via the sweep.
		sortTokensByKind(n.held)
		stagger := 0
		var tail []token
		for _, t := range n.held {
			if t.kind == tokTail {
				tail = append(tail, t)
				continue
			}
			e.noteUnheld(i, t)
			e.forwardTokenTo(t, i, target, stagger)
			stagger++
		}
		n.held = tail
	default:
		// Backward taken: keep buffering until TAIL arrives, then move
		// the whole bundle up the reverse network.
		e.maybeCompleteBackward(i)
	}
}

// maybeCompleteBackward transports the bundle up the reverse network once a
// fired backward-taken jump holds the TAIL_TOKEN, resetting every
// instruction in the loop span to the ready state (Section 6.3: "each
// instruction from the same thread/class/method must also reset").
func (e *Engine) maybeCompleteBackward(i int) {
	n := &e.nodes[i]
	mt := &e.meta[i]
	if n.phase != phaseFired || !n.decisionTaken {
		return
	}
	if mt.flags&metaBranch == 0 || int(mt.target) > i {
		return
	}
	if !e.holdsTail(i) {
		return
	}
	// The transport may only move a complete bundle: nothing still in
	// flight toward the jump and nothing buffered behind it.
	if e.event {
		// The TAIL is held here (checked above), so tailPos == i and
		// liveBehind counts non-TAIL tokens in flight to <= i or held at
		// <= i. The bundle buffered at i itself is expected; anything
		// beyond it blocks the transport.
		if e.liveBehind != len(n.held)-1 {
			return
		}
	} else {
		for _, msg := range e.serialQ {
			if msg.to <= i {
				return
			}
		}
		for k := 0; k < i; k++ {
			if len(e.nodes[k].held) > 0 {
				return
			}
		}
	}
	target := int(mt.target)
	bundle := n.held
	n.held = nil
	for _, t := range bundle {
		e.noteUnheld(i, t)
	}

	// Reset the loop span (including this jump, which will re-execute).
	for k := target; k <= i; k++ {
		nk := &e.nodes[k]
		if e.event {
			switch nk.phase {
			case phaseExecuting:
				e.executingCount--
			case phaseService:
				e.serviceCount--
			}
		}
		// gen advances so completions scheduled for the old incarnation
		// are orphaned; held is preserved (always empty below the jump —
		// the transport gate above requires it).
		e.nodes[k] = nodeState{firedOnce: nk.firedOnce, held: nk.held, gen: nk.gen + 1}
	}

	// Re-inject the bundle at the loop head, one serial clock apart, after
	// the reverse transit.
	dist := e.targetDelay(i, target)
	sortTokensByKind(bundle)
	stagger := 0
	for _, t := range bundle {
		e.pushSerial(t, target, dist+stagger)
		stagger++
	}
}

// DebugState renders node phases and pending queues for stall diagnosis.
func (e *Engine) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serialQ=%d meshQ=%d\n", e.pendingSerial(), e.pendingMesh())
	for i := range e.nodes {
		n := &e.nodes[i]
		if n.phase == phaseReady && len(n.held) == 0 && !n.headSeen && n.popsReceived == 0 {
			continue
		}
		fmt.Fprintf(&b, "node %3d %-24s phase=%d head=%v pops=%d mem=%v reg=%v held=%d dec=%v\n",
			i, e.code(i).String(), n.phase, n.headSeen, n.popsReceived, n.memSeen, n.regSeen, len(n.held), n.decisionTaken)
	}
	return b.String()
}
