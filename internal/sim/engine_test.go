package sim

import (
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/workload"
)

func buildTestMethod(t *testing.T, maxLocals int, build func(a *bytecode.Assembler)) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &classfile.Method{
		Class: "T", Name: "m", MaxLocals: maxLocals,
		Code: code, Pool: classfile.NewConstantPool(),
	}
}

func runOn(t *testing.T, cfg Config, m *classfile.Method, policy BranchPolicy) Result {
	t.Helper()
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	p, err := loader.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fabric.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cfg, res, policy)
	result, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if result.TimedOut {
		t.Fatalf("unexpected timeout after %d cycles (fired %d/%d)",
			result.MeshCycles, result.Fired, result.Static)
	}
	return result
}

func configByName(t *testing.T, name string) Config {
	t.Helper()
	for _, c := range Configurations() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no config %q", name)
	return Config{}
}

func TestStraightLineExecution(t *testing.T) {
	// The Figure 21 method: every instruction must fire exactly once.
	m := buildTestMethod(t, 5, func(a *bytecode.Assembler) {
		a.ILoad(1).ILoad(2).ILoad(3).Op(bytecode.Iadd).Op(bytecode.Iadd).
			Local(bytecode.Istore, 4).Op(bytecode.Return)
	})
	for _, name := range []string{"Baseline", "Compact10", "Compact2", "Sparse2", "Hetero2"} {
		cfg := configByName(t, name)
		r := runOn(t, cfg, m, BP1)
		if r.Fired != len(m.Code) {
			t.Errorf("%s: fired %d, want %d", name, r.Fired, len(m.Code))
		}
		if r.Coverage() != 1.0 {
			t.Errorf("%s: coverage %.2f, want 1.0", name, r.Coverage())
		}
		if r.MeshCycles <= 0 {
			t.Errorf("%s: non-positive cycle count", name)
		}
	}
}

func TestForwardBranchBothArms(t *testing.T) {
	m := buildTestMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Branch(bytecode.Ifeq, "else").
			Op(bytecode.Iconst1).
			Branch(bytecode.Goto, "join").
			Label("else").
			Op(bytecode.Iconst2).
			Label("join").
			IStore(1).
			Op(bytecode.Return)
	})
	cfg := configByName(t, "Baseline")

	// BP1 takes the first forward jump: the else arm executes (iconst_2),
	// the then arm does not.
	r1 := runOn(t, cfg, m, BP1)
	// 7 instructions total; taken path skips iconst_1 and goto = 5 fired.
	if r1.Fired != 5 {
		t.Errorf("BP1 fired %d, want 5", r1.Fired)
	}
	// BP2 falls through: iconst_1, goto execute; iconst_2 skipped = 6.
	r2 := runOn(t, cfg, m, BP2)
	if r2.Fired != 6 {
		t.Errorf("BP2 fired %d, want 6", r2.Fired)
	}
	if r1.Coverage() >= 1.0 || r2.Coverage() >= 1.0 {
		t.Error("single-arm executions cannot cover 100%")
	}
}

func TestLoopExecutesTenIterations(t *testing.T) {
	// One back jump: 90% taken = body runs 10 times before fall-through.
	m := buildTestMethod(t, 2, func(a *bytecode.Assembler) {
		a.Label("top").
			Iinc(1, 1).                   // 0
			ILoad(0).                     // 1
			Branch(bytecode.Ifne, "top"). // 2: back jump, taken 9x
			Op(bytecode.Return)           // 3
	})
	cfg := configByName(t, "Baseline")
	r := runOn(t, cfg, m, BP1)
	// Ten iterations of {iinc, iload, ifne} plus the return.
	want := 10*3 + 1
	if r.Fired != want {
		t.Errorf("fired %d, want %d", r.Fired, want)
	}
	if r.Coverage() != 1.0 {
		t.Errorf("coverage %.2f, want 1.0", r.Coverage())
	}
}

func TestDataflowOperandsGateFiring(t *testing.T) {
	// A float multiply must wait for both mesh operands and take the
	// 10-cycle float latency (Table 17).
	m := buildTestMethod(t, 3, func(a *bytecode.Assembler) {
		a.DLoad(0).DLoad(1).Op(bytecode.Dmul).DStore(2).Op(bytecode.Return)
	})
	cfg := configByName(t, "Baseline")
	r := runOn(t, cfg, m, BP1)
	if r.Fired != 5 {
		t.Errorf("fired %d, want 5", r.Fired)
	}
	// Lower bound: dmul alone is 10 cycles.
	if r.MeshCycles < CyclesFloat {
		t.Errorf("cycles %d < float latency %d", r.MeshCycles, CyclesFloat)
	}
}

func TestMemoryReadStalls(t *testing.T) {
	pool := classfile.NewConstantPool()
	fx := pool.AddFieldRef(classfile.FieldRef{Class: "T", Name: "x", Static: true, Slot: 0})
	a := bytecode.NewAssembler()
	a.Field(bytecode.GetstaticQuick, fx).IStore(0).Op(bytecode.Return)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{Class: "T", Name: "m", MaxLocals: 1, Code: code, Pool: pool}

	cfg := configByName(t, "Baseline")
	r := runOn(t, cfg, m, BP1)
	if r.MeshCycles < MemoryServiceCycles {
		t.Errorf("cycles %d < memory service %d", r.MeshCycles, MemoryServiceCycles)
	}
}

func TestCallPaysGPPService(t *testing.T) {
	pool := classfile.NewConstantPool()
	ref := pool.AddMethodRef(classfile.MethodRef{Class: "X", Name: "f", Argc: 1, ReturnsValue: true})
	a := bytecode.NewAssembler()
	a.ILoad(0).Call(bytecode.Invokestatic, ref, 1, true).IStore(0).Op(bytecode.Return)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{Class: "T", Name: "m", MaxLocals: 1, Code: code, Pool: pool}

	cfg := configByName(t, "Baseline")
	r := runOn(t, cfg, m, BP1)
	if r.MeshCycles < GPPServiceCycles {
		t.Errorf("cycles %d < GPP service %d", r.MeshCycles, GPPServiceCycles)
	}
}

func TestBaselineFastestConfigOrdering(t *testing.T) {
	// For a representative loopy method, IPC must be ordered
	// Baseline >= Compact10 >= Compact4 >= Compact2 >= Sparse2,
	// the central shape of Tables 21–22.
	m := buildTestMethod(t, 4, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			Label("top").
			ILoad(1).ILoad(2).Op(bytecode.Iadd).IStore(2).
			ILoad(1).ILoad(3).Op(bytecode.Ixor).IStore(3).
			Iinc(1, 1).
			ILoad(0).
			Branch(bytecode.Ifne, "top").
			ILoad(2).Op(bytecode.Ireturn)
	})
	names := []string{"Baseline", "Compact10", "Compact4", "Compact2", "Sparse2"}
	var prev float64 = 1e18
	for _, name := range names {
		cfg := configByName(t, name)
		r1 := runOn(t, cfg, m, BP1)
		r2 := runOn(t, cfg, m, BP2)
		ipc := (r1.IPC() + r2.IPC()) / 2
		if ipc > prev+1e-9 {
			t.Errorf("%s IPC %.4f exceeds previous config %.4f", name, ipc, prev)
		}
		prev = ipc
	}
}

func TestPredictorPatterns(t *testing.T) {
	p := NewPredictor(BP1)
	if !p.Forward(3) || p.Forward(3) || !p.Forward(3) {
		t.Error("BP1 forward pattern should alternate starting taken")
	}
	q := NewPredictor(BP2)
	if q.Forward(3) || !q.Forward(3) {
		t.Error("BP2 forward pattern should alternate starting not-taken")
	}
	taken := 0
	for i := 0; i < 20; i++ {
		if p.Backward(7) {
			taken++
		}
	}
	if taken != 18 {
		t.Errorf("back jumps taken %d/20, want 18 (90%%)", taken)
	}
}

func TestNextDoubleSimulation(t *testing.T) {
	// The Figure 31 end-to-end case: Random.nextDouble through every
	// configuration; the FoM pattern must decline from Baseline.
	nd := methodBySignature(t, "scimark/utils/Random.nextDouble/0")
	runner := &Runner{}
	var baseIPC float64
	for _, cfg := range Configurations() {
		run, err := runner.RunMethod(cfg, nd)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		ipc := run.MeanIPC()
		if cfg.Name == "Baseline" {
			baseIPC = ipc
			continue
		}
		if ipc > baseIPC+1e-9 {
			t.Errorf("%s IPC %.4f exceeds baseline %.4f", cfg.Name, ipc, baseIPC)
		}
		if run.BP1.Coverage() < 0.5 {
			t.Errorf("%s coverage %.2f too low", cfg.Name, run.BP1.Coverage())
		}
	}
}

func methodBySignature(t *testing.T, sig string) *classfile.Method {
	t.Helper()
	for _, m := range workload.NamedMethods() {
		if m.Signature() == sig {
			return m
		}
	}
	t.Fatalf("no method %s", sig)
	return nil
}

func TestRunnerSkipsIneligibleMethods(t *testing.T) {
	m := buildTestMethod(t, 1, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Switch(map[int64]string{1: "x"}, "x").
			Label("x").Op(bytecode.Return)
	})
	runner := &Runner{}
	cr, err := runner.RunAll(configByName(t, "Baseline"), []*classfile.Method{m})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Skipped != 1 || len(cr.Runs) != 0 {
		t.Errorf("skipped=%d runs=%d, want 1/0", cr.Skipped, len(cr.Runs))
	}
}

func TestNamedCorpusExecutesOnAllConfigs(t *testing.T) {
	runner := &Runner{MaxMeshCycles: 500_000}
	methods := workload.NamedMethods()
	for _, cfg := range Configurations() {
		cr, err := runner.RunAll(cfg, methods)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(cr.Runs) < 10 {
			t.Errorf("%s: only %d methods ran (skipped %d, timed out %d)",
				cfg.Name, len(cr.Runs), cr.Skipped, cr.TimedOut)
		}
	}
}
