package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// The bucket queue must pop buckets in ascending time order with items in
// insertion order, across interleaved pushes and pops.
func TestTimeQOrdering(t *testing.T) {
	var q timeQ[int]
	rng := rand.New(rand.NewSource(42))

	type item struct{ time, seq int }
	var expect []item
	seq := 0
	push := func(tm int) {
		q.push(tm, seq)
		expect = append(expect, item{tm, seq})
		seq++
	}

	clock := 0
	for round := 0; round < 2000; round++ {
		for k := rng.Intn(4); k > 0; k-- {
			push(clock + 1 + rng.Intn(50))
		}
		if q.n == 0 {
			continue
		}
		if rng.Intn(3) != 0 {
			continue
		}
		tm := q.nextTime()
		if tm < clock {
			t.Fatalf("nextTime %d went backwards past clock %d", tm, clock)
		}
		clock = tm
		bt, items := q.takeMin()
		if bt != tm {
			t.Fatalf("takeMin time %d != nextTime %d", bt, tm)
		}
		// Expected: all items at time tm, in push order.
		var want []int
		keep := expect[:0]
		for _, it := range expect {
			if it.time == tm {
				want = append(want, it.seq)
			} else {
				keep = append(keep, it)
			}
		}
		expect = keep
		if len(items) != len(want) {
			t.Fatalf("bucket at %d has %d items, want %d", tm, len(items), len(want))
		}
		for i := range want {
			if items[i] != want[i] {
				t.Fatalf("bucket at %d item %d = %d, want %d (insertion order broken)", tm, i, items[i], want[i])
			}
		}
		q.recycle(items)
	}

	// Drain the remainder fully ordered.
	sort.Slice(expect, func(i, j int) bool {
		if expect[i].time != expect[j].time {
			return expect[i].time < expect[j].time
		}
		return expect[i].seq < expect[j].seq
	})
	var got []item
	for q.n > 0 {
		bt, items := q.takeMin()
		for _, s := range items {
			got = append(got, item{bt, s})
		}
		q.recycle(items)
	}
	if len(got) != len(expect) {
		t.Fatalf("drained %d items, want %d", len(got), len(expect))
	}
	for i := range got {
		if got[i] != expect[i] {
			t.Fatalf("drain[%d] = %+v, want %+v", i, got[i], expect[i])
		}
	}
	if q.n != 0 || len(q.asc) != q.head {
		t.Fatalf("queue not empty after drain: n=%d", q.n)
	}
}

func TestArrivalSortsMatchReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		msgs := make([]serialMsg, rng.Intn(12))
		for i := range msgs {
			msgs[i] = serialMsg{
				tok: token{kind: tokenKind(rng.Intn(4)), reg: i},
				to:  rng.Intn(5),
			}
		}
		want := append([]serialMsg(nil), msgs...)
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].to != want[j].to {
				return want[i].to < want[j].to
			}
			return want[i].tok.kind < want[j].tok.kind
		})
		sortSerialArrivals(msgs)
		for i := range msgs {
			if msgs[i] != want[i] {
				t.Fatalf("trial %d: insertion sort diverges from stable sort at %d", trial, i)
			}
		}
	}
}
