package sim

import (
	"context"
	"fmt"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/stats"
)

// MethodRun bundles both branch-policy executions of one method on one
// configuration ("Each method was executed twice with different branch
// characteristics").
type MethodRun struct {
	Signature string
	BP1, BP2  Result
}

// MeanIPC averages the two policies' IPC.
func (mr MethodRun) MeanIPC() float64 {
	return (mr.BP1.IPC() + mr.BP2.IPC()) / 2
}

// Runner executes a method population across configurations.
type Runner struct {
	// MaxMeshCycles overrides the per-execution timeout (0 = default).
	MaxMeshCycles int
	// Resolve overrides the deploy pipeline (verification, greedy load,
	// address resolution — Figures 20 and 22). Nil runs the pipeline from
	// scratch on every call; a deployment cache plugs in here to amortize
	// repeated runs of the same method on the same configuration.
	Resolve func(cfg Config, m *classfile.Method) (*fabric.Resolution, error)
	// Ctx, when non-nil, is polled by the engine every few thousand mesh
	// cycles so a single multimillion-cycle execution aborts mid-run on
	// cancellation (returning ctx.Err()) rather than only between jobs.
	Ctx context.Context
}

// resolve runs the configured deploy pipeline.
func (r *Runner) resolve(cfg Config, m *classfile.Method) (*fabric.Resolution, error) {
	if r.Resolve != nil {
		return r.Resolve(cfg, m)
	}
	return DeployMethod(cfg, m)
}

// DeployMethod is the uncached deploy pipeline: verification, greedy load
// into the fabric, and address resolution. Methods the fabric cannot host
// return a *fabric.LoadError.
func DeployMethod(cfg Config, m *classfile.Method) (*fabric.Resolution, error) {
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	placement, err := loader.Load(m)
	if err != nil {
		return nil, err
	}
	return fabric.Resolve(placement)
}

// RunMethod executes one method under one configuration with both branch
// policies. Methods the fabric cannot host return a *fabric.LoadError.
func (r *Runner) RunMethod(cfg Config, m *classfile.Method) (MethodRun, error) {
	res, err := r.resolve(cfg, m)
	if err != nil {
		return MethodRun{}, err
	}
	return r.RunResolved(cfg, res)
}

// RunResolved executes an already-deployed method (both branch policies) —
// the post-cache half of RunMethod. Results are identical to RunMethod's:
// the engine never mutates the resolution, so one deployment can back any
// number of executions, including concurrent ones.
func (r *Runner) RunResolved(cfg Config, res *fabric.Resolution) (MethodRun, error) {
	m := res.Placement.Method
	out := MethodRun{Signature: m.Signature()}
	for _, policy := range []BranchPolicy{BP1, BP2} {
		eng := NewEngine(cfg, res, policy)
		if r.MaxMeshCycles > 0 {
			eng.SetMaxCycles(r.MaxMeshCycles)
		}
		if r.Ctx != nil {
			eng.SetPreempt(r.Ctx)
		}
		result, err := eng.Run()
		if err != nil {
			return MethodRun{}, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		result.Policy = policy
		if policy == BP1 {
			out.BP1 = result
		} else {
			out.BP2 = result
		}
	}
	return out, nil
}

// ConfigResults is the population outcome for one configuration.
type ConfigResults struct {
	Config Config
	Runs   []MethodRun
	// Skipped counts methods the fabric rejected (switch/jsr methods).
	Skipped int
	// TimedOut counts methods filtered for not reaching a Return.
	TimedOut int
}

// RunAll executes the population on one configuration, filtering timeouts
// exactly as the dissertation did ("these methods have been filtered from
// the results").
func (r *Runner) RunAll(cfg Config, methods []*classfile.Method) (*ConfigResults, error) {
	out := &ConfigResults{Config: cfg}
	for _, m := range methods {
		run, err := r.RunMethod(cfg, m)
		if err != nil {
			var le *fabric.LoadError
			if asLoadError(err, &le) {
				out.Skipped++
				continue
			}
			return nil, fmt.Errorf("sim: %s: %w", m.Signature(), err)
		}
		if run.BP1.TimedOut || run.BP2.TimedOut {
			out.TimedOut++
			continue
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

func asLoadError(err error, target **fabric.LoadError) bool {
	for err != nil {
		if le, ok := err.(*fabric.LoadError); ok {
			*target = le
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// IPCs extracts the per-method mean IPC series.
func (cr *ConfigResults) IPCs() []float64 {
	out := make([]float64, len(cr.Runs))
	for i, run := range cr.Runs {
		out[i] = run.MeanIPC()
	}
	return out
}

// IPCSummary summarizes raw IPC (Table 21 rows).
func (cr *ConfigResults) IPCSummary() stats.Summary {
	return stats.Summarize(cr.IPCs())
}

// FigureOfMerit compares per-method IPC against the baseline run of the
// same population: each method's IPC is normalized to its own Baseline IPC
// and the normalized values are averaged (Section 7.3, Measurements:
// "Figure of Merits are calculated for each method and then shown").
type FigureOfMerit struct {
	Mean   float64
	StdDev float64
	N      int
}

// FoMAgainst computes the Figure of Merit of cr relative to baseline.
// Methods present in only one result set are ignored.
func (cr *ConfigResults) FoMAgainst(baseline *ConfigResults) FigureOfMerit {
	base := make(map[string]float64, len(baseline.Runs))
	for _, run := range baseline.Runs {
		base[run.Signature] = run.MeanIPC()
	}
	var ratios []float64
	for _, run := range cr.Runs {
		b, ok := base[run.Signature]
		if !ok || b == 0 {
			continue
		}
		ratios = append(ratios, run.MeanIPC()/b)
	}
	return FigureOfMerit{
		Mean:   stats.Mean(ratios),
		StdDev: stats.StdDev(ratios),
		N:      len(ratios),
	}
}

// PerMethodFoM returns signature → IPC ratio vs baseline (Tables 27–28).
func (cr *ConfigResults) PerMethodFoM(baseline *ConfigResults) map[string]float64 {
	base := make(map[string]float64, len(baseline.Runs))
	for _, run := range baseline.Runs {
		base[run.Signature] = run.MeanIPC()
	}
	out := make(map[string]float64, len(cr.Runs))
	for _, run := range cr.Runs {
		if b, ok := base[run.Signature]; ok && b > 0 {
			out[run.Signature] = run.MeanIPC() / b
		}
	}
	return out
}

// CoverageSummary averages coverage per policy (Table 18).
func (cr *ConfigResults) CoverageSummary() (bp1, bp2 float64) {
	var c1, c2 []float64
	for _, run := range cr.Runs {
		c1 = append(c1, run.BP1.Coverage())
		c2 = append(c2, run.BP2.Coverage())
	}
	return stats.Mean(c1), stats.Mean(c2)
}

// ParallelismMean averages the fraction of mesh cycles with >=2 executing
// instructions (Table 26).
func (cr *ConfigResults) ParallelismMean() float64 {
	var ps []float64
	for _, run := range cr.Runs {
		ps = append(ps, run.BP1.Parallelism(), run.BP2.Parallelism())
	}
	return stats.Mean(ps)
}

// RatioSummary summarizes instructions-to-max-node over the population
// (Tables 19–20).
func (cr *ConfigResults) RatioSummary() stats.Summary {
	var rs []float64
	for _, run := range cr.Runs {
		if run.BP1.Static > 0 {
			rs = append(rs, float64(run.BP1.MaxNode)/float64(run.BP1.Static))
		}
	}
	return stats.Summarize(rs)
}

// FilterRuns selects runs by a static-size predicate (Table 16's filters).
func (cr *ConfigResults) FilterRuns(keep func(MethodRun) bool) *ConfigResults {
	out := &ConfigResults{Config: cr.Config, Skipped: cr.Skipped, TimedOut: cr.TimedOut}
	for _, run := range cr.Runs {
		if keep(run) {
			out.Runs = append(out.Runs, run)
		}
	}
	return out
}
