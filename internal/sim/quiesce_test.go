package sim

import (
	"testing"

	"javaflow/internal/fabric"
	"javaflow/internal/workload"
)

// A quiesce window (the GC mechanism of Sections 6.2/6.4) must stall the
// fabric for exactly its duration and leave the computation unchanged.
func TestQuiescePreservesExecution(t *testing.T) {
	m := methodBySignature(t, "scimark/utils/Random.nextDouble/0")
	cfg := configByName(t, "Compact4")
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	p, err := loader.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fabric.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}

	plain := NewEngine(cfg, res, BP1)
	base, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	const pause = 40
	quiesced := NewEngine(cfg, res, BP1)
	quiesced.ScheduleQuiesce(base.MeshCycles/2, pause)
	got, err := quiesced.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got.Fired != base.Fired {
		t.Errorf("quiesce changed work: fired %d vs %d", got.Fired, base.Fired)
	}
	if got.Distinct != base.Distinct {
		t.Errorf("quiesce changed coverage: %d vs %d", got.Distinct, base.Distinct)
	}
	if got.MeshCycles != base.MeshCycles+pause {
		t.Errorf("quiesced run took %d cycles, want %d+%d", got.MeshCycles, base.MeshCycles, pause)
	}
}

// A quiesce scheduled after completion has no effect.
func TestQuiesceAfterCompletionIsNoop(t *testing.T) {
	m := methodBySignature(t, "scimark/utils/Random.nextDouble/0")
	cfg := configByName(t, "Baseline")
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	p, _ := loader.Load(m)
	res, err := fabric.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewEngine(cfg, res, BP2)
	base, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	late := NewEngine(cfg, res, BP2)
	late.ScheduleQuiesce(base.MeshCycles+100, 500)
	got, err := late.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.MeshCycles != base.MeshCycles || got.Fired != base.Fired {
		t.Errorf("late quiesce changed the run: %+v vs %+v", got, base)
	}
}

// Ensure the workload import stays (methodBySignature helper lives in
// engine_test.go and draws from the named corpus).
var _ = workload.NamedMethods

// Folding (Section 6.4's enhancement) must never slow a method down and
// must preserve the executed path.
func TestFoldingNeverSlowsDown(t *testing.T) {
	cfg := configByName(t, "Hetero2")
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	for _, m := range workload.NamedMethods() {
		p, err := loader.Load(m)
		if err != nil {
			continue
		}
		res, err := fabric.Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		plain := NewEngine(cfg, res, BP1)
		pr, err := plain.Run()
		if err != nil {
			t.Fatal(err)
		}
		folded := NewEngine(cfg, res, BP1)
		folded.EnableFolding()
		fr, err := folded.Run()
		if err != nil {
			t.Fatal(err)
		}
		if fr.MeshCycles > pr.MeshCycles {
			t.Errorf("%s: folding slowed execution: %d > %d cycles",
				m.Signature(), fr.MeshCycles, pr.MeshCycles)
		}
		if fr.Distinct != pr.Distinct {
			t.Errorf("%s: folding changed coverage: %d vs %d",
				m.Signature(), fr.Distinct, pr.Distinct)
		}
		if fr.Fired > pr.Fired {
			t.Errorf("%s: folded work count %d exceeds unfolded %d",
				m.Signature(), fr.Fired, pr.Fired)
		}
	}
}
