package sim

import (
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/workload"
)

// The executed path depends only on the branch policy, never on machine
// timing: for a given method and policy, the dynamic instruction count must
// be identical on every configuration. This is the invariant that makes the
// Figure-of-Merit comparison meaningful (same work, different cycles).
func TestFiredCountInvariantAcrossConfigs(t *testing.T) {
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 77, Count: 80}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	runner := &Runner{MaxMeshCycles: 300_000}
	type key struct {
		sig    string
		policy BranchPolicy
	}
	fired := make(map[key]int)
	first := make(map[string]string) // sig -> config that set the count

	for _, cfg := range Configurations() {
		for _, m := range methods {
			run, err := runner.RunMethod(cfg, m)
			if err != nil {
				continue // ineligible for the fabric
			}
			if run.BP1.TimedOut || run.BP2.TimedOut {
				continue
			}
			for _, r := range []Result{run.BP1, run.BP2} {
				k := key{r.Signature, r.Policy}
				if prev, seen := fired[k]; seen {
					if prev != r.Fired {
						t.Fatalf("%s %v: fired %d on %s but %d on %s",
							r.Signature, r.Policy, r.Fired, cfg.Name, prev, first[r.Signature])
					}
				} else {
					fired[k] = r.Fired
					first[r.Signature] = cfg.Name
				}
			}
		}
	}
	if len(fired) < 100 {
		t.Fatalf("only %d (method,policy) pairs checked", len(fired))
	}
}

// Coverage can never exceed 1 and fired counts never fall below the
// distinct-site count.
func TestResultSanityOverCorpus(t *testing.T) {
	methods := workload.NamedMethods()
	runner := &Runner{MaxMeshCycles: 300_000}
	cfg := configByName(t, "Compact4")
	for _, m := range methods {
		run, err := runner.RunMethod(cfg, m)
		if err != nil {
			continue
		}
		for _, r := range []Result{run.BP1, run.BP2} {
			if r.Coverage() > 1.0 {
				t.Errorf("%s: coverage %v > 1", r.Signature, r.Coverage())
			}
			if r.Fired < r.Distinct {
				t.Errorf("%s: fired %d < distinct %d", r.Signature, r.Fired, r.Distinct)
			}
			if r.ParallelCycles > r.BusyCycles {
				t.Errorf("%s: parallel cycles exceed busy cycles", r.Signature)
			}
			if r.BusyCycles > r.MeshCycles {
				t.Errorf("%s: busy cycles exceed total cycles", r.Signature)
			}
		}
	}
}

// An unconditional self-loop never reaches a Return: the engine must report
// a timeout (the dissertation filtered such endless-loop methods), not hang
// or stall-error.
func TestEndlessLoopTimesOut(t *testing.T) {
	// A truly endless goto loop cannot verify (the return would be
	// unreachable), and a conditional back jump always exits under the
	// 90% predictor — so the paper's timeout cases are loops whose work
	// simply exceeds the cycle budget. Triple-nested 10-iteration loops
	// give 10³ body executions.
	deep := buildTestMethod(t, 4, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			Label("l1").
			PushInt(0).IStore(2).
			Label("l2").
			PushInt(0).IStore(3).
			Label("l3").
			Iinc(3, 1).
			ILoad(0).Branch(bytecode.Ifne, "l3").
			Iinc(2, 1).
			ILoad(0).Branch(bytecode.Ifne, "l2").
			Iinc(1, 1).
			ILoad(0).Branch(bytecode.Ifne, "l1").
			Op(bytecode.Return)
	})
	cfg := configByName(t, "Baseline")
	loaderRun := func(maxCycles int) Result {
		runner := &Runner{MaxMeshCycles: maxCycles}
		run, err := runner.RunMethod(cfg, deep)
		if err != nil {
			t.Fatal(err)
		}
		return run.BP1
	}
	// With a tiny budget the triple loop (10^3 iterations) cannot finish.
	r := loaderRun(200)
	if !r.TimedOut {
		t.Fatalf("expected timeout with 200-cycle budget, finished in %d", r.MeshCycles)
	}
	// With a generous budget it completes.
	r = loaderRun(1_000_000)
	if r.TimedOut {
		t.Fatal("triple loop should finish within a million cycles")
	}
}

// Serial clock ratio is monotone: more serial clocks per mesh clock can
// only help (or tie) on the same fabric.
func TestSerialBudgetMonotonicity(t *testing.T) {
	m := methodBySignature(t, "gnu/java/security/hash/Sha160.sha/2")
	base := configByName(t, "Compact2").Fabric
	prev := -1.0
	for _, serial := range []int{1, 2, 4, 10, 25} {
		cfg := Config{Name: "sweep", Fabric: base, SerialPerMesh: serial}
		runner := &Runner{MaxMeshCycles: 400_000}
		run, err := runner.RunMethod(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		ipc := run.MeanIPC()
		if prev > 0 && ipc < prev-1e-9 {
			t.Errorf("serial=%d IPC %.4f dropped below previous %.4f", serial, ipc, prev)
		}
		prev = ipc
	}
}
