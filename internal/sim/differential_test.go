package sim

import (
	"bytes"
	"context"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/workload"
)

// The event-driven core must be observationally indistinguishable from the
// reference loop: same Result structs, same encoded MethodRun bytes, same
// stall errors. This is the invariant that lets EngineVersion stay at 1
// across the rewrite, so every persisted store record keeps replaying.

// diffVariant is one engine configuration axis combination.
type diffVariant struct {
	name  string
	fold  bool
	qAt   int // quiesce schedule (qFor == 0 disables)
	qFor  int
	cap   int // max mesh cycles
	short int // reduced cap used when the run times out even at cap
}

func diffVariants() []diffVariant {
	return []diffVariant{
		{name: "plain", cap: 120_000, short: 6_000},
		{name: "folded", fold: true, cap: 120_000, short: 6_000},
		{name: "quiesce-early", qAt: 37, qFor: 53, cap: 120_000, short: 6_000},
		{name: "quiesce-late", qAt: 2048, qFor: 4096, cap: 120_000, short: 6_000},
		{name: "folded-quiesce", fold: true, qAt: 64, qFor: 700, cap: 120_000, short: 6_000},
	}
}

func newDiffEngine(cfg Config, res *fabric.Resolution, p BranchPolicy, v diffVariant, cap int) *Engine {
	eng := NewEngine(cfg, res, p)
	eng.SetMaxCycles(cap)
	if v.fold {
		eng.EnableFolding()
	}
	if v.qFor > 0 {
		eng.ScheduleQuiesce(v.qAt, v.qFor)
	}
	return eng
}

// runPair executes one (method, config, policy, variant) cell on both
// loops and asserts identical outcomes. Returns both results for
// independent MethodRun assembly.
func runPair(t *testing.T, cfg Config, res *fabric.Resolution, p BranchPolicy, v diffVariant) (Result, Result, bool) {
	t.Helper()
	sig := res.Placement.Method.Signature()

	run := func(cap int) (Result, Result, error, error) {
		ev, evErr := newDiffEngine(cfg, res, p, v, cap).Run()
		rf, rfErr := newDiffEngine(cfg, res, p, v, cap).RunReference()
		return ev, rf, evErr, rfErr
	}

	cap := v.cap
	ev, rf, evErr, rfErr := run(cap)
	if evErr == nil && ev.TimedOut {
		// Timeout runs cost the reference loop cap×O(nodes) work; compare
		// them at a reduced cap instead (a method that times out at the
		// full cap necessarily times out at any smaller one).
		cap = v.short
		ev, rf, evErr, rfErr = run(cap)
	}

	if (evErr == nil) != (rfErr == nil) {
		t.Fatalf("%s/%s/%v/%s: error divergence: event=%v reference=%v",
			sig, cfg.Name, p, v.name, evErr, rfErr)
	}
	if evErr != nil {
		if evErr.Error() != rfErr.Error() {
			t.Fatalf("%s/%s/%v/%s: error text divergence:\n  event:     %v\n  reference: %v",
				sig, cfg.Name, p, v.name, evErr, rfErr)
		}
		return Result{}, Result{}, false
	}
	if ev != rf {
		t.Fatalf("%s/%s/%v/%s: result divergence:\n  event:     %+v\n  reference: %+v",
			sig, cfg.Name, p, v.name, ev, rf)
	}
	return ev, rf, true
}

func diffMethods(t *testing.T) []*classfile.Method {
	t.Helper()
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 9, Count: 50}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	return methods
}

// TestDifferentialEventVsReference sweeps every workload method over every
// configuration, branch policy, folding setting and quiesce schedule, and
// asserts the event-driven engine and the reference loop agree exactly —
// Result structs and encoded MethodRun bytes.
func TestDifferentialEventVsReference(t *testing.T) {
	methods := diffMethods(t)
	variants := diffVariants()
	cells := 0

	for _, cfg := range Configurations() {
		loader := &fabric.Loader{Fabric: cfg.Fabric}
		for _, m := range methods {
			p, err := loader.Load(m)
			if err != nil {
				continue // ineligible for this fabric
			}
			res, err := fabric.Resolve(p)
			if err != nil {
				continue
			}
			for _, v := range variants {
				mrEvent := MethodRun{Signature: m.Signature()}
				mrRef := mrEvent
				ok := true
				for _, policy := range []BranchPolicy{BP1, BP2} {
					ev, rf, completed := runPair(t, cfg, res, policy, v)
					if !completed {
						ok = false
						break
					}
					ev.Policy, rf.Policy = policy, policy
					if policy == BP1 {
						mrEvent.BP1, mrRef.BP1 = ev, rf
					} else {
						mrEvent.BP2, mrRef.BP2 = ev, rf
					}
					cells++
				}
				if !ok {
					continue
				}
				evBytes, err := mrEvent.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				rfBytes, err := mrRef.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(evBytes, rfBytes) {
					t.Fatalf("%s/%s/%s: MethodRun encodings differ", m.Signature(), cfg.Name, v.name)
				}
			}
		}
	}
	if cells < 500 {
		t.Fatalf("only %d differential cells compared; corpus or variants collapsed", cells)
	}
	t.Logf("%d differential cells byte-identical", cells)
}

// TestDifferentialPreemptMatches: a cancelled context must abort both
// loops identically — error out with no Result.
func TestDifferentialPreemptMatches(t *testing.T) {
	m := methodBySignature(t, "scimark/utils/Random.nextDouble/0")
	cfg := configByName(t, "Compact4")
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	p, err := loader.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fabric.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ev := NewEngine(cfg, res, BP1)
	ev.SetPreempt(ctx)
	if _, err := ev.Run(); err == nil {
		t.Fatal("event loop ignored cancelled context")
	}
	rf := NewEngine(cfg, res, BP1)
	rf.SetPreempt(ctx)
	if _, err := rf.RunReference(); err == nil {
		t.Fatal("reference loop ignored cancelled context")
	}
}

// TestEventEngineStats sanity-checks the throughput counters: a real run
// processes events, skips cycles during a quiesce stall, and lands in the
// process totals.
func TestEventEngineStats(t *testing.T) {
	m := methodBySignature(t, "scimark/utils/Random.nextDouble/0")
	cfg := configByName(t, "Compact2")
	loader := &fabric.Loader{Fabric: cfg.Fabric}
	p, err := loader.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fabric.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}

	before := TotalEngineStats()
	eng := NewEngine(cfg, res, BP1)
	eng.ScheduleQuiesce(100, 5_000)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.MeshCycles != uint64(r.MeshCycles) {
		t.Errorf("stats cycles %d != result cycles %d", st.MeshCycles, r.MeshCycles)
	}
	if st.Events == 0 {
		t.Error("no events counted")
	}
	if st.CyclesSkipped < 5_000 {
		t.Errorf("skipped %d cycles, want at least the 5000-cycle quiesce window", st.CyclesSkipped)
	}
	after := TotalEngineStats()
	if after.Runs != before.Runs+1 {
		t.Errorf("totals runs %d -> %d, want +1", before.Runs, after.Runs)
	}
	if after.Events-before.Events != st.Events {
		t.Errorf("totals events delta %d, want %d", after.Events-before.Events, st.Events)
	}
}
