package sim

import (
	"bytes"
	"testing"
)

func sampleRun() MethodRun {
	return MethodRun{
		Signature: "scimark/fft/FFT.bitreverse/1",
		BP1: Result{
			Config: "Compact2", Signature: "scimark/fft/FFT.bitreverse/1",
			Policy: BP1, Fired: 1234, Distinct: 40, Static: 44,
			MeshCycles: 5678, ParallelCycles: 90, BusyCycles: 3000,
			MaxNode: 44,
		},
		BP2: Result{
			Config: "Compact2", Signature: "scimark/fft/FFT.bitreverse/1",
			Policy: BP2, Fired: 1200, Distinct: 41, Static: 44,
			MeshCycles: 5600, ParallelCycles: 85, BusyCycles: 2900,
			MaxNode: 44, TimedOut: true,
		},
	}
}

func TestMethodRunCodecRoundTrip(t *testing.T) {
	want := sampleRun()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got MethodRun
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestMethodRunCodecStable(t *testing.T) {
	a, _ := sampleRun().MarshalBinary()
	b, _ := sampleRun().MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatalf("equal runs marshalled to different bytes")
	}
	zero, _ := (MethodRun{}).MarshalBinary()
	if bytes.Equal(a, zero) {
		t.Fatalf("distinct runs marshalled to equal bytes")
	}
}

func TestMethodRunCodecRejectsGarbage(t *testing.T) {
	data, _ := sampleRun().MarshalBinary()
	var mr MethodRun
	if err := mr.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatalf("truncated buffer decoded without error")
	}
	if err := mr.UnmarshalBinary(append(append([]byte{}, data...), 0xAB)); err == nil {
		t.Fatalf("trailing bytes decoded without error")
	}
	bad := append([]byte{}, data...)
	bad[0] = 99 // wrong codec version
	if err := mr.UnmarshalBinary(bad); err == nil {
		t.Fatalf("wrong version decoded without error")
	}
}
