package sim

import (
	"encoding/binary"
	"fmt"
)

// EngineVersion identifies the simulation engine's observable behaviour:
// any change that can alter a Result (latency tables, clocking rules,
// branch methodology, codec layout) must bump it so persisted MethodRun
// records from older engines are treated as misses, never replayed.
const EngineVersion = 1

// codecVersion is the serialization layout version of MarshalBinary.
const codecVersion = 1

// MarshalBinary renders the MethodRun in a stable, self-describing byte
// layout independent of Go struct layout or JSON field ordering:
//
//	version byte (codecVersion)
//	Signature        — uvarint length + bytes
//	BP1, BP2         — each Result as:
//	    Config       — uvarint length + bytes
//	    Signature    — uvarint length + bytes
//	    Policy       — one byte
//	    Fired, Distinct, Static, MeshCycles, ParallelCycles,
//	    BusyCycles, MaxNode — uvarint each
//	    TimedOut     — one byte (0/1)
//
// Two MethodRuns marshal to equal bytes iff they are equal, so persistent
// stores can both key and verify on the encoding.
func (mr MethodRun) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64+len(mr.Signature))
	buf = append(buf, codecVersion)
	buf = appendString(buf, mr.Signature)
	buf = appendResult(buf, mr.BP1)
	buf = appendResult(buf, mr.BP2)
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (mr *MethodRun) UnmarshalBinary(data []byte) error {
	d := &decoder{buf: data}
	if v := d.byte(); v != codecVersion {
		return fmt.Errorf("sim: methodrun codec version %d, want %d", v, codecVersion)
	}
	out := MethodRun{Signature: d.string()}
	out.BP1 = d.result()
	out.BP2 = d.result()
	if d.err != nil {
		return fmt.Errorf("sim: decoding methodrun: %w", d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("sim: decoding methodrun: %d trailing bytes", len(d.buf)-d.off)
	}
	*mr = out
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendResult(buf []byte, r Result) []byte {
	buf = appendString(buf, r.Config)
	buf = appendString(buf, r.Signature)
	buf = append(buf, byte(r.Policy))
	for _, n := range [...]int{
		r.Fired, r.Distinct, r.Static, r.MeshCycles,
		r.ParallelCycles, r.BusyCycles, r.MaxNode,
	} {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return appendBool(buf, r.TimedOut)
}

// decoder walks the buffer, latching the first error; subsequent reads
// return zero values so call sites stay linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d", msg, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("short buffer")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("string overruns buffer")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) result() Result {
	var r Result
	r.Config = d.string()
	r.Signature = d.string()
	r.Policy = BranchPolicy(d.byte())
	for _, dst := range [...]*int{
		&r.Fired, &r.Distinct, &r.Static, &r.MeshCycles,
		&r.ParallelCycles, &r.BusyCycles, &r.MaxNode,
	} {
		*dst = int(d.uvarint())
	}
	r.TimedOut = d.byte() == 1
	return r
}
