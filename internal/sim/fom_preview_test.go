package sim

import (
	"fmt"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/workload"
)

// TestFoMShapePreview prints the Figure-of-Merit profile across all six
// configurations on a mixed corpus sample (manual inspection aid).
func TestFoMShapePreview(t *testing.T) {
	if testing.Short() {
		t.Skip("preview only")
	}
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 99, Count: 120}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	runner := &Runner{MaxMeshCycles: 300_000}
	var baseline *ConfigResults
	for _, cfg := range Configurations() {
		cr, err := runner.RunAll(cfg, methods)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Name == "Baseline" {
			baseline = cr
		}
		fom := cr.FoMAgainst(baseline)
		sum := cr.IPCSummary()
		fmt.Printf("%-10s n=%3d skip=%d timeout=%d IPCmean=%.3f IPCmed=%.3f FoM=%.3f±%.3f par=%.2f ratio=%.2f\n",
			cfg.Name, len(cr.Runs), cr.Skipped, cr.TimedOut,
			sum.Mean, sum.Median, fom.Mean, fom.StdDev,
			cr.ParallelismMean(), cr.RatioSummary().Mean)
	}
	_ = classfile.Method{}
}
