package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// loopyMethod builds nested 10-iteration loops, depth levels deep — the
// same shape TestEndlessLoopTimesOut uses, generalized so a deep nest can
// stand in for a multimillion-cycle execution.
func loopyMethod(t *testing.T, depth int) *classfile.Method {
	t.Helper()
	return buildTestMethod(t, depth+1, func(a *bytecode.Assembler) {
		for d := 1; d <= depth; d++ {
			a.PushInt(0).IStore(d).Label(labelFor(d))
		}
		for d := depth; d >= 1; d-- {
			a.Iinc(d, 1).ILoad(0).Branch(bytecode.Ifne, labelFor(d))
		}
		a.Op(bytecode.Return)
	})
}

func labelFor(d int) string { return "l" + string(rune('0'+d)) }

// A cancelled context must abort the engine mid-execution: with a huge
// mesh-cycle budget the run returns ctx.Err() promptly instead of grinding
// to the timeout bound or to completion.
func TestEnginePreemptsCancelledContext(t *testing.T) {
	m := loopyMethod(t, 3)
	cfg := configByName(t, "Baseline")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runner := &Runner{MaxMeshCycles: 50_000_000, Ctx: ctx}
	if _, err := runner.RunMethod(cfg, m); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Without a context the same budget still completes normally.
	plain := &Runner{MaxMeshCycles: 50_000_000}
	run, err := plain.RunMethod(cfg, m)
	if err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}
	if run.BP1.TimedOut || run.BP1.Fired == 0 {
		t.Fatalf("uncancelled run did not complete: %+v", run.BP1)
	}
}

// Cancellation that lands while the engine is deep inside a long execution
// must cut it off within preemptEvery cycles, not at the mesh-cycle bound.
// The five-deep loop nest would run far past the deadline if the engine
// only checked between jobs.
func TestEnginePreemptsMidRun(t *testing.T) {
	m := loopyMethod(t, 5)
	cfg := configByName(t, "Baseline")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	runner := &Runner{MaxMeshCycles: 2_000_000_000, Ctx: ctx}
	_, err := runner.RunMethod(cfg, m)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (after %v), want context.DeadlineExceeded", err, elapsed)
	}
	// Generous bound: the point is "milliseconds after cancellation", not
	// "after two billion simulated cycles".
	if elapsed > 10*time.Second {
		t.Fatalf("preemption took %v, expected prompt abort", elapsed)
	}
}
