module javaflow

go 1.23
