module javaflow

go 1.24
